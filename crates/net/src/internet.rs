//! The composed simulator: registry + population + zones + GFW + routing,
//! with a probe/response interface at two fidelity levels.
//!
//! * [`Internet::probe`] — the semantic fast path the bulk scanner uses
//!   (hundreds of millions of probes across a four-year service run).
//! * [`Internet::send_bytes`] — the wire path: real packet bytes in, real
//!   packet bytes out, built on the same semantics. Integration tests
//!   assert the two paths agree, so the fast path inherits the wire
//!   path's fidelity.
//!
//! Mutable state is limited to PMTU caches (what the Too Big Trick pokes)
//! and the controlled-domain query log (what the validation experiment
//! reads), both behind a `parking_lot::Mutex`.

use std::collections::HashMap;

use parking_lot::Mutex;
use sixdust_addr::{prf, Addr};
use sixdust_telemetry::{Counter, Registry};
use sixdust_wire::dns::{DnsMessage, Rcode, Rdata, Record};
use sixdust_wire::icmpv6::Icmpv6;
use sixdust_wire::quic::{QuicPacket, QUIC_V1};
use sixdust_wire::tcp::{TcpOption, TcpSegment};
use sixdust_wire::udp::UdpDatagram;
use sixdust_wire::{Ipv6Header, Packet, Transport};

use crate::faults::{FaultConfig, OutageScope};
use crate::fingerprint::{DnsBehavior, TcpFingerprint};
use crate::gfw::Gfw;
use crate::population::{HostView, Population};
use crate::proto::Protocol;
use crate::registry::{AsId, AsRegistry};
use crate::scale::Scale;
use crate::time::Day;
use crate::zones::{DnsZones, CONTROLLED_DOMAIN};

/// Default path MTU when no Packet Too Big message has been absorbed.
pub const DEFAULT_MTU: u32 = 1500;

/// ICMPv6 rate-limiter bucket classes (see [`Internet::icmp_rate_limited`]).
const RL_ROUTER: u8 = 0;
const RL_BACKEND: u8 = 1;

/// A semantic probe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProbeKind {
    /// ICMPv6 echo request with a given total payload size in bytes.
    IcmpEcho {
        /// Payload size (drives fragmentation against the PMTU cache).
        size: u16,
    },
    /// TCP SYN to a port.
    TcpSyn {
        /// Destination port.
        port: u16,
    },
    /// A UDP/53 AAAA query.
    Dns {
        /// Queried name.
        qname: String,
    },
    /// A UDP/443 QUIC Initial with a version-negotiation-forcing version.
    Quic,
    /// An ICMPv6 Packet Too Big *sent by us* (the TBT's cache-seeding step).
    TooBig {
        /// Advertised MTU.
        mtu: u32,
    },
}

/// A semantic response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Echo reply; `fragmented` reflects the responder's PMTU cache.
    EchoReply {
        /// Whether the reply came back as fragments.
        fragmented: bool,
    },
    /// SYN-ACK carrying the responder's TCP fingerprint.
    SynAck {
        /// Handshake fingerprint features.
        fp: TcpFingerprint,
    },
    /// RST (port closed but host alive).
    Rst,
    /// A DNS message (real answer, error, or GFW injection).
    Dns(DnsMessage),
    /// QUIC Version Negotiation.
    QuicVn,
    /// Hop-limit expiry en route.
    TimeExceeded {
        /// The router interface that answered.
        hop: Addr,
    },
}

/// The simulated IPv6 Internet.
///
/// ```
/// use sixdust_net::{Internet, ProbeKind, Scale, Day, FaultConfig};
/// let net = Internet::build(Scale::tiny()).with_faults(FaultConfig::lossless());
/// // Ground truth can enumerate; a scanner can only probe.
/// let (addr, ..) = net.population().enumerate_responsive(Day(100))[0];
/// let replies = net.probe(addr, &ProbeKind::IcmpEcho { size: 8 }, Day(100));
/// assert!(!replies.is_empty());
/// ```
pub struct Internet {
    registry: AsRegistry,
    population: Population,
    zones: DnsZones,
    gfw: Gfw,
    faults: FaultConfig,
    pmtu: Mutex<HashMap<u64, u32>>,
    /// ICMPv6 rate-limiter budgets: `(class, entity) -> (day, spent)`.
    /// Bounded by entity count — each entry resets when its day advances.
    icmp_budget: Mutex<HashMap<(u8, u64), (u32, u32)>>,
    /// Queries that reached the controlled domain's authoritative server:
    /// `(source address, queried name)`.
    ns_log: Mutex<Vec<(Addr, String)>>,
    seed: u64,
    counters: NetCounters,
    /// The vantage AS probes originate from; `None` means the registry's
    /// default vantage (the historical single-vantage behavior,
    /// bit-for-bit).
    source_vantage: Option<AsId>,
}

/// Always-on traffic counters of one [`Internet`]. They count from the
/// moment the simulator is built; attaching a registry (see
/// [`Internet::with_telemetry`]) merely makes them visible in snapshots.
#[derive(Debug, Clone, Default)]
pub struct NetCounters {
    /// Semantic end-to-end probes ([`Internet::probe`]).
    pub probes: Counter,
    /// TTL-limited traceroute probes ([`Internet::probe_ttl`]).
    pub ttl_probes: Counter,
    /// Wire-level packets handled ([`Internet::send_bytes`]).
    pub wire_packets: Counter,
    /// Probes silenced by fault injection (loss or an outage window).
    pub faults_dropped: Counter,
    /// Responses delivered twice by fault injection.
    pub faults_duplicated: Counter,
    /// Wire responses with bytes flipped in flight.
    pub faults_corrupted: Counter,
    /// ICMPv6 messages suppressed/ignored by router rate limiting.
    pub faults_rate_limited: Counter,
    /// Hop-1 traceroute answers synthesized because the source vantage
    /// owns no router pool (vantages registered after the population was
    /// built).
    pub hops_vantage_fallback: Counter,
    /// DNS queries for GFW-blocked names filtered on *egress* because the
    /// source vantage sits behind the firewall.
    pub gfw_egress_filtered: Counter,
}

impl NetCounters {
    /// Registers the counter handles under their `net.*` names.
    pub fn register(&self, registry: &Registry) {
        registry.register_counter("net.probes", &self.probes);
        registry.register_counter("net.ttl_probes", &self.ttl_probes);
        registry.register_counter("net.wire_packets", &self.wire_packets);
        registry.register_counter("net.faults.dropped", &self.faults_dropped);
        registry.register_counter("net.faults.duplicated", &self.faults_duplicated);
        registry.register_counter("net.faults.corrupted", &self.faults_corrupted);
        registry.register_counter("net.faults.rate_limited", &self.faults_rate_limited);
        registry.register_counter("net.hops.vantage_fallback", &self.hops_vantage_fallback);
        registry.register_counter("net.gfw.egress_filtered", &self.gfw_egress_filtered);
    }
}

impl Internet {
    /// Builds the whole simulated Internet at a given scale.
    pub fn build(scale: Scale) -> Internet {
        let mut registry = AsRegistry::build(scale);
        let population = Population::build(&registry);
        // Operators announce the aliased prefixes they use (plen <= 64):
        // this is what makes them BGP candidates for the alias detection,
        // mirroring how Cloudflare's /48s or EpicUp's /28s show up in
        // routing tables.
        for g in population.groups() {
            if matches!(g.kind, crate::population::GroupKind::Aliased { .. })
                && g.prefix.len() <= 64
            {
                registry.add_route(g.prefix, g.asid);
            }
        }
        let zones = DnsZones::build(&registry, &population);
        Internet {
            gfw: Gfw::new(prf::mix2(scale.seed, 0x6F0)),
            seed: scale.seed,
            registry,
            population,
            zones,
            faults: FaultConfig::default_loss(),
            pmtu: Mutex::new(HashMap::new()),
            icmp_budget: Mutex::new(HashMap::new()),
            ns_log: Mutex::new(Vec::new()),
            counters: NetCounters::default(),
            source_vantage: None,
        }
    }

    /// Overrides the fault configuration.
    pub fn with_faults(mut self, faults: FaultConfig) -> Internet {
        self.faults = faults;
        self
    }

    /// Returns the simulator scanning *from* vantage `id` instead of the
    /// default vantage. The source vantage determines the outage identity
    /// (see [`crate::Outage::vantage_asn`]), the fault realization (each
    /// non-default vantage sees an independent drop-coin stream over the
    /// same world), GFW egress filtering (a vantage behind the firewall
    /// cannot get queries for blocked names out), and the hop-1
    /// traceroute interface. Selecting the default vantage preserves the
    /// historical streams bit-for-bit.
    pub fn with_source_vantage(mut self, id: AsId) -> Internet {
        self.source_vantage = Some(id);
        self
    }

    /// Registers an additional measurement vantage AS in the underlying
    /// registry (see [`AsRegistry::register_vantage`]) and returns its
    /// id. Registration order determines the new AS's address block, so
    /// multiple `Internet` instances registering the same roster in the
    /// same order agree on every address.
    pub fn register_vantage(&mut self, asn: u32, name: &str, country: &str) -> AsId {
        self.registry.register_vantage(asn, name, country)
    }

    /// The AS the scanner's probes originate from.
    pub fn source_vantage(&self) -> AsId {
        self.source_vantage.unwrap_or_else(|| self.registry.vantage())
    }

    /// The source address probes originate from.
    pub fn source_addr(&self) -> Addr {
        self.registry.vantage_addr_of(self.source_vantage())
    }

    /// The active fault configuration.
    pub fn faults(&self) -> &FaultConfig {
        &self.faults
    }

    /// Exposes the simulator's always-on traffic counters in `registry`
    /// (as `net.probes`, `net.ttl_probes`, `net.wire_packets`).
    pub fn with_telemetry(self, registry: &Registry) -> Internet {
        self.counters.register(registry);
        self
    }

    /// The always-on traffic counters.
    pub fn counters(&self) -> &NetCounters {
        &self.counters
    }

    /// The AS registry.
    pub fn registry(&self) -> &AsRegistry {
        &self.registry
    }

    /// The host population.
    pub fn population(&self) -> &Population {
        &self.population
    }

    /// The DNS namespace.
    pub fn zones(&self) -> &DnsZones {
        &self.zones
    }

    /// Resets mutable state (PMTU caches, ICMPv6 rate budgets, NS query
    /// log).
    pub fn reset_state(&self) {
        self.pmtu.lock().clear();
        self.icmp_budget.lock().clear();
        self.ns_log.lock().clear();
    }

    /// Drains the controlled-domain query log.
    pub fn take_ns_log(&self) -> Vec<(Addr, String)> {
        std::mem::take(&mut self.ns_log.lock())
    }

    /// The fault-stream seed: the world seed mixed with the fault
    /// config's own seed (zero by default, preserving the historical
    /// drop-coin stream) and — for non-default vantages only — a salt
    /// derived from the source vantage's ASN, so each vantage experiences
    /// an independent fault realization over the same world.
    fn fault_seed(&self) -> u64 {
        self.seed ^ self.faults.seed ^ self.vantage_salt()
    }

    /// Zero for the default vantage (historical streams intact); a PRF of
    /// the source ASN otherwise.
    fn vantage_salt(&self) -> u64 {
        match self.source_vantage {
            Some(id) if id != self.registry.vantage() => {
                prf::mix2(0x56A7_A6E0, u64::from(self.registry.get(id).asn))
            }
            _ => 0,
        }
    }

    /// Whether an outage window silences `dst` on `day` — the source
    /// vantage is down (nothing answers), the probe's protocol is blacked
    /// out, or the destination's origin AS has withdrawn its routes.
    fn outage_silenced(&self, dst: Addr, proto: Protocol, day: Day) -> bool {
        if self.faults.outages.is_empty() {
            return false;
        }
        let source_asn = self.registry.get(self.source_vantage()).asn;
        if self.faults.vantage_down_from(source_asn, day) {
            return true;
        }
        if self.faults.proto_down(proto, day) {
            return true;
        }
        if self.faults.outages.iter().any(|o| matches!(o.scope, OutageScope::Asn(_))) {
            if let Some(asid) = self.registry.origin(dst) {
                return self.faults.asn_down(self.registry.get(asid).asn, day);
            }
        }
        false
    }

    fn dropped(&self, dst: Addr, proto: Option<Protocol>, day: Day, salt: u64) -> bool {
        if !self.faults.any_loss() {
            return false;
        }
        let origin_asn = if self.faults.as_drop.is_empty() {
            None
        } else {
            self.registry.origin(dst).map(|id| self.registry.get(id).asn)
        };
        let permille = self.faults.loss_permille(self.fault_seed(), dst, proto, origin_asn, day);
        permille > 0
            && prf::chance(
                self.fault_seed() ^ salt,
                dst.0,
                0x10_55 ^ u64::from(day.0),
                u64::from(permille),
                1000,
            )
    }

    /// Charges one ICMPv6 message against `entity`'s daily budget and
    /// reports whether the budget is exhausted (the message must be
    /// suppressed). Always false when rate limiting is off.
    fn icmp_rate_limited(&self, class: u8, entity: u64, day: Day) -> bool {
        let Some(limit) = self.faults.icmp_rate_limit else {
            return false;
        };
        let mut budgets = self.icmp_budget.lock();
        let slot = budgets.entry((class, entity)).or_insert((day.0, 0));
        if slot.0 != day.0 {
            *slot = (day.0, 0);
        }
        slot.1 += 1;
        slot.1 > limit.per_day
    }

    // ---- routing -------------------------------------------------------

    /// Number of hops from the vantage point to `dst` (the destination is
    /// hop `path_len`).
    pub fn path_len(&self, dst: Addr) -> u8 {
        5 + (prf::prf_u128(self.seed, dst.0 >> 80, 0x9A7) % 4) as u8
    }

    /// The router interface answering at `hop` (1-based, `< path_len`) on
    /// the way to `dst`.
    pub fn hop_addr(&self, dst: Addr, hop: u8, day: Day) -> Addr {
        let vantage_as = self.source_vantage();
        let dst_as = self.registry.origin(dst);
        let transit = self.registry.by_asn(3356).and_then(|id| self.population.router_pool_of(id));
        let own = dst_as.and_then(|id| self.population.router_pool_of(id));
        let key = dst.0 >> 80; // route varies per /48-ish block
        match hop {
            1 => match self.population.router_pool_of(vantage_as) {
                Some(pool) => {
                    pool.hop_addr(prf::prf_u128(self.seed, key, 1) % pool.slots.max(1), day)
                }
                None => {
                    // Vantages registered after the population was built
                    // own no router pool; synthesize a stable first-hop
                    // interface inside the vantage's own prefix instead
                    // of panicking.
                    self.counters.hops_vantage_fallback.incr();
                    let base = self.registry.vantage_addr_of(vantage_as);
                    let iid = 2 + prf::prf_u128(self.seed, key, 0xF4_11) % 14;
                    Addr((base.0 & (u128::MAX << 64)) | u128::from(iid))
                }
            },
            2 | 3 => match transit {
                Some(pool) => pool.hop_addr(
                    prf::prf_u128(self.seed, key, u64::from(hop)) % pool.slots.max(1),
                    day,
                ),
                None => Addr(0),
            },
            h => match own.or(transit) {
                Some(pool) => pool.hop_addr(
                    prf::prf_u128(self.seed, dst.0 >> 64, u64::from(h)) % pool.slots.max(1),
                    day,
                ),
                None => Addr(0),
            },
        }
    }

    /// A probe carrying an explicit hop limit (traceroute). Returns the
    /// single response, if any.
    pub fn probe_ttl(
        &self,
        dst: Addr,
        hop_limit: u8,
        kind: &ProbeKind,
        day: Day,
    ) -> Option<Response> {
        self.counters.ttl_probes.incr();
        if self.outage_silenced(dst, probe_proto(kind), day) {
            self.counters.faults_dropped.incr();
            return None;
        }
        if self.dropped(dst, Some(probe_proto(kind)), day, u64::from(hop_limit)) {
            self.counters.faults_dropped.incr();
            return None;
        }
        let plen = self.path_len(dst);
        if hop_limit < plen {
            let hop = self.hop_addr(dst, hop_limit.max(1), day);
            if hop == Addr(0) {
                return None;
            }
            // Routers rate-limit ICMPv6 error generation (RFC 4443
            // §2.4f): once an interface's daily budget is spent, further
            // expiries go unanswered and yarrp sees a gap.
            if self.icmp_rate_limited(RL_ROUTER, (hop.0 >> 64) as u64 ^ hop.0 as u64, day) {
                self.counters.faults_rate_limited.incr();
                return None;
            }
            return Some(Response::TimeExceeded { hop });
        }
        self.probe(dst, kind, day).into_iter().next()
    }

    // ---- end-to-end probes ----------------------------------------------

    /// Sends a probe to `dst` and returns every response that comes back
    /// (the GFW can answer in addition to — or instead of — the target).
    ///
    /// Equivalent to [`Internet::probe_attempt`] with `attempt == 0`.
    pub fn probe(&self, dst: Addr, kind: &ProbeKind, day: Day) -> Vec<Response> {
        self.probe_attempt(dst, kind, day, 0)
    }

    /// Sends one retry attempt of a probe. The loss coin is salted by
    /// `attempt`, so consecutive attempts toward the same destination on
    /// the same day see *independent* drop decisions — this is what makes
    /// retries actually mask loss (a retry loop replaying attempt 0 gets
    /// the identical coin and learns nothing). Attempt 0 reproduces the
    /// historical [`Internet::probe`] stream bit-for-bit.
    pub fn probe_attempt(
        &self,
        dst: Addr,
        kind: &ProbeKind,
        day: Day,
        attempt: u8,
    ) -> Vec<Response> {
        self.counters.probes.incr();
        if self.outage_silenced(dst, probe_proto(kind), day) {
            self.counters.faults_dropped.incr();
            return Vec::new();
        }
        if self.dropped(dst, Some(probe_proto(kind)), day, attempt_salt(attempt)) {
            self.counters.faults_dropped.incr();
            return Vec::new();
        }

        // A vantage behind the firewall can't get blocked queries *out*:
        // during an active era the GFW filters on egress too, so a
        // CN-source scanner sees silence where an EU vantage sees
        // injected answers — the disagreement the multi-vantage analysis
        // classifies.
        if let ProbeKind::Dns { qname } = kind {
            if Gfw::is_blocked(qname)
                && Gfw::era(day).is_some()
                && self.registry.get(self.source_vantage()).behind_gfw()
            {
                self.counters.gfw_egress_filtered.incr();
                return Vec::new();
            }
        }
        let mut out = Vec::new();

        // The firewall sits on-path and acts before delivery.
        if let ProbeKind::Dns { qname } = kind {
            if let Some(asid) = self.registry.origin(dst) {
                if self.registry.get(asid).behind_gfw() {
                    let query = DnsMessage::aaaa_query(0, qname);
                    for resp in self.gfw.inject(dst, &query, day) {
                        out.push(Response::Dns(resp));
                    }
                }
            }
        }

        let host = self.population.lookup(dst, day);
        if let Some(host) = host {
            if let Some(resp) = self.host_response(dst, &host, kind, day) {
                out.push(resp);
            }
        }

        // In-flight duplication: the last response arrives twice.
        if self.faults.duplicate_permille > 0
            && !out.is_empty()
            && prf::chance(
                self.fault_seed() ^ attempt_salt(attempt),
                dst.0,
                0xD0_B1 ^ u64::from(day.0),
                u64::from(self.faults.duplicate_permille),
                1000,
            )
        {
            out.push(out.last().expect("non-empty").clone());
            self.counters.faults_duplicated.incr();
        }
        out
    }

    fn host_response(
        &self,
        dst: Addr,
        host: &HostView,
        kind: &ProbeKind,
        day: Day,
    ) -> Option<Response> {
        match kind {
            ProbeKind::IcmpEcho { size } => {
                if !host.protos.contains(Protocol::Icmp) {
                    return None;
                }
                let mtu = self.pmtu.lock().get(&host.backend_uid).copied().unwrap_or(DEFAULT_MTU);
                Some(Response::EchoReply { fragmented: u32::from(*size) + 48 > mtu })
            }
            ProbeKind::TooBig { mtu } => {
                // Only hosts that answer pings process the error message.
                if host.protos.contains(Protocol::Icmp) {
                    // Hosts rate-limit inbound ICMPv6 error processing too:
                    // over budget, the Too Big is ignored and the TBT's
                    // cache seeding silently fails.
                    if self.icmp_rate_limited(RL_BACKEND, host.backend_uid, day) {
                        self.counters.faults_rate_limited.incr();
                        return None;
                    }
                    self.pmtu
                        .lock()
                        .insert(host.backend_uid, (*mtu).max(sixdust_wire::IPV6_MIN_MTU));
                }
                None
            }
            ProbeKind::TcpSyn { port } => {
                let proto = match port {
                    80 => Protocol::Tcp80,
                    443 => Protocol::Tcp443,
                    _ => {
                        return if host.protos.contains(Protocol::Tcp80)
                            || host.protos.contains(Protocol::Tcp443)
                        {
                            Some(Response::Rst)
                        } else {
                            None
                        }
                    }
                };
                if host.protos.contains(proto) {
                    Some(Response::SynAck { fp: host.fingerprint.clone() })
                } else if host.protos.contains(Protocol::Tcp80)
                    || host.protos.contains(Protocol::Tcp443)
                {
                    // TCP stack present, port closed.
                    Some(Response::Rst)
                } else {
                    None
                }
            }
            ProbeKind::Dns { qname } => {
                if !host.protos.contains(Protocol::Udp53) {
                    return None;
                }
                let behavior = host.dns.unwrap_or(DnsBehavior::AuthRefused);
                let query = DnsMessage::aaaa_query(0, qname);
                Some(Response::Dns(self.dns_answer(dst, behavior, &query, day)))
            }
            ProbeKind::Quic => {
                if host.protos.contains(Protocol::Udp443) {
                    Some(Response::QuicVn)
                } else {
                    None
                }
            }
        }
    }

    fn dns_answer(
        &self,
        responder: Addr,
        behavior: DnsBehavior,
        query: &DnsMessage,
        day: Day,
    ) -> DnsMessage {
        let qname = query.qname().unwrap_or("").to_string();
        let is_controlled = qname.ends_with(CONTROLLED_DOMAIN);
        match behavior {
            DnsBehavior::AuthRefused => DnsMessage::response_to(query, Rcode::Refused),
            DnsBehavior::OpenResolver | DnsBehavior::Proxy => {
                let mut resp = DnsMessage::response_to(query, Rcode::NoError);
                if is_controlled {
                    // Recursion reaches our authoritative server; log the
                    // querying source. Proxies resolve via another
                    // interface, so the observed source differs from the
                    // probed address.
                    let observed_src = if behavior == DnsBehavior::Proxy {
                        Addr(responder.0 ^ 0xffff)
                    } else {
                        responder
                    };
                    self.ns_log.lock().push((observed_src, qname.clone()));
                    resp.answers.push(Record {
                        name: qname,
                        ttl: 300,
                        rdata: Rdata::Aaaa(self.registry.vantage_addr()),
                    });
                } else if Gfw::is_blocked(&qname) {
                    // A real resolver would answer; give a plausible AAAA.
                    resp.answers.push(Record {
                        name: qname,
                        ttl: 300,
                        rdata: Rdata::Aaaa(Addr(0x2a00_1450_4001_0800_u128 << 64 | 0x200e)),
                    });
                } else {
                    // Resolve within the simulated namespace when possible;
                    // otherwise NXDOMAIN.
                    let d = prf::prf_u128(self.seed, qname_hash(&qname), 0xDD)
                        % self.zones.total_domains();
                    let (addr, _) = self.zones.resolve(&self.population, d, day);
                    resp.answers.push(Record { name: qname, ttl: 300, rdata: Rdata::Aaaa(addr) });
                }
                resp
            }
            DnsBehavior::Referral => {
                let mut resp = DnsMessage::response_to(query, Rcode::NoError);
                resp.authority.push(Record {
                    name: "test".into(),
                    ttl: 86_400,
                    rdata: Rdata::Ns("a.root-servers.net".into()),
                });
                resp
            }
            DnsBehavior::Broken => {
                if prf::chance(self.seed, responder.0, 0xDE, 1, 2) {
                    DnsMessage::response_to(query, Rcode::Other(11))
                } else {
                    let mut resp = DnsMessage::response_to(query, Rcode::NoError);
                    resp.authority.push(Record {
                        name: qname,
                        ttl: 0,
                        rdata: Rdata::Ns("localhost".into()),
                    });
                    resp
                }
            }
        }
    }

    // ---- wire adapter ----------------------------------------------------

    /// Full wire-level send: parses the probe bytes, applies the same
    /// semantics as [`Internet::probe`], and serializes responses.
    pub fn send_bytes(&self, bytes: &[u8], day: Day) -> Vec<Vec<u8>> {
        self.counters.wire_packets.incr();
        let Ok(pkt) = Packet::parse(bytes) else {
            return Vec::new();
        };
        let src = pkt.ipv6.src;
        let dst = pkt.ipv6.dst;
        let (kind, echo_meta, tcp_meta, udp_meta) = match &pkt.transport {
            Transport::Icmpv6(Icmpv6::EchoRequest { ident, seq, payload }) => (
                ProbeKind::IcmpEcho { size: payload.len() as u16 },
                Some((*ident, *seq, payload.len())),
                None,
                None,
            ),
            Transport::Icmpv6(Icmpv6::PacketTooBig { mtu }) => {
                (ProbeKind::TooBig { mtu: *mtu }, None, None, None)
            }
            Transport::Icmpv6(_) => return Vec::new(),
            Transport::Tcp(seg) => {
                if !seg.flags.syn || seg.flags.ack {
                    return Vec::new();
                }
                (ProbeKind::TcpSyn { port: seg.dst_port }, None, Some(seg.clone()), None)
            }
            Transport::Udp(d) => match d.dst_port {
                53 => {
                    let Ok(q) = DnsMessage::parse(&d.payload) else {
                        return Vec::new();
                    };
                    let qname = q.qname().unwrap_or("").to_string();
                    (ProbeKind::Dns { qname }, None, None, Some((d.clone(), Some(q))))
                }
                443 => {
                    if QuicPacket::parse(&d.payload).is_err() {
                        return Vec::new();
                    }
                    (ProbeKind::Quic, None, None, Some((d.clone(), None)))
                }
                _ => return Vec::new(),
            },
        };

        if self.outage_silenced(dst, probe_proto(&kind), day) {
            self.counters.faults_dropped.incr();
            return Vec::new();
        }

        // Hop-limited probes expire on-path.
        let plen = self.path_len(dst);
        if pkt.ipv6.hop_limit < plen {
            if self.dropped(dst, Some(probe_proto(&kind)), day, u64::from(pkt.ipv6.hop_limit)) {
                self.counters.faults_dropped.incr();
                return Vec::new();
            }
            let hop = self.hop_addr(dst, pkt.ipv6.hop_limit.max(1), day);
            if hop == Addr(0) {
                return Vec::new();
            }
            if self.icmp_rate_limited(RL_ROUTER, (hop.0 >> 64) as u64 ^ hop.0 as u64, day) {
                self.counters.faults_rate_limited.incr();
                return Vec::new();
            }
            let reply = Packet {
                ipv6: Ipv6Header::new(hop, src, 64),
                transport: Transport::Icmpv6(Icmpv6::TimeExceeded { orig_dst: dst }),
            };
            return vec![self.maybe_corrupt(reply.to_bytes(), dst, day, 0)];
        }

        let replies: Vec<Vec<u8>> = self
            .probe(dst, &kind, day)
            .into_iter()
            .flat_map(|resp| {
                let transport = match resp {
                    Response::EchoReply { fragmented } => {
                        let Some((ident, seq, len)) = echo_meta else {
                            return Vec::new();
                        };
                        let reply = Packet {
                            ipv6: Ipv6Header::new(dst, src, 64),
                            transport: Transport::Icmpv6(Icmpv6::EchoReply {
                                ident,
                                seq,
                                payload: vec![0u8; len],
                                fragmented,
                            }),
                        };
                        if fragmented {
                            // A host whose PMTU cache says 1280 sends real
                            // fragments on the wire.
                            let bytes = reply.to_bytes();
                            let hdr = sixdust_wire::Ipv6Header::parse(&bytes).expect("just built");
                            return sixdust_wire::fragment::fragment(
                                &hdr,
                                sixdust_wire::NextHeader::Icmpv6,
                                &bytes[sixdust_wire::IPV6_HEADER_LEN..],
                                sixdust_wire::IPV6_MIN_MTU,
                                prf::prf_u128(self.seed, dst.0, 0xF4A6) as u32,
                            );
                        }
                        return vec![reply.to_bytes()];
                    }
                    Response::SynAck { fp } => {
                        let Some(probe) = tcp_meta.as_ref() else {
                            return Vec::new();
                        };
                        let mut sa = TcpSegment::syn_ack(
                            probe,
                            prf::prf_u128(self.seed, dst.0, 0x5EC) as u32,
                            fp.window,
                        );
                        sa.options = fingerprint_options(&fp);
                        Transport::Tcp(sa)
                    }
                    Response::Rst => {
                        let Some(probe) = tcp_meta.as_ref() else {
                            return Vec::new();
                        };
                        Transport::Tcp(TcpSegment::rst(probe))
                    }
                    Response::Dns(mut msg) => {
                        let Some((probe_udp, query)) = udp_meta.as_ref() else {
                            return Vec::new();
                        };
                        if let Some(q) = query {
                            msg.id = q.id;
                        }
                        Transport::Udp(UdpDatagram {
                            src_port: 53,
                            dst_port: probe_udp.src_port,
                            payload: msg.to_bytes(),
                        })
                    }
                    Response::QuicVn => {
                        let Some((probe_udp, _)) = udp_meta.as_ref() else {
                            return Vec::new();
                        };
                        let Ok(QuicPacket::Initial { dcid, scid, .. }) =
                            QuicPacket::parse(&probe_udp.payload)
                        else {
                            return Vec::new();
                        };
                        Transport::Udp(UdpDatagram {
                            src_port: 443,
                            dst_port: probe_udp.src_port,
                            payload: QuicPacket::VersionNegotiation {
                                dcid: scid,
                                scid: dcid,
                                supported: vec![QUIC_V1],
                            }
                            .to_bytes(),
                        })
                    }
                    Response::TimeExceeded { .. } => return Vec::new(),
                };
                vec![Packet { ipv6: Ipv6Header::new(dst, src, 64), transport }.to_bytes()]
            })
            .collect();
        replies
            .into_iter()
            .enumerate()
            .map(|(i, bytes)| self.maybe_corrupt(bytes, dst, day, i as u64))
            .collect()
    }

    /// Applies in-flight corruption to one wire response: with probability
    /// `corrupt_permille`, a handful of bytes are deterministically
    /// flipped. Downstream parsers must treat the result as untrusted
    /// input — this is the fault that drives the never-panic guarantee of
    /// the wire stack with realistic garbage instead of fuzzer noise.
    fn maybe_corrupt(&self, mut bytes: Vec<u8>, dst: Addr, day: Day, idx: u64) -> Vec<u8> {
        if self.faults.corrupt_permille == 0 || bytes.is_empty() {
            return bytes;
        }
        let tag = 0xC0_22 ^ (u64::from(day.0) << 8) ^ idx;
        if !prf::chance(
            self.fault_seed(),
            dst.0,
            tag,
            u64::from(self.faults.corrupt_permille),
            1000,
        ) {
            return bytes;
        }
        let mut stream = prf::PrfStream::new(self.fault_seed(), dst.0, tag ^ 0xAA);
        let flips = 1 + stream.next_bounded(4);
        for _ in 0..flips {
            let pos = stream.next_bounded(bytes.len() as u64) as usize;
            bytes[pos] ^= 1 + stream.next_bounded(255) as u8;
        }
        self.counters.faults_corrupted.incr();
        bytes
    }
}

/// The scan protocol a probe kind exercises (for per-protocol fault
/// overrides). `TooBig` rides ICMPv6.
fn probe_proto(kind: &ProbeKind) -> Protocol {
    match kind {
        ProbeKind::IcmpEcho { .. } | ProbeKind::TooBig { .. } => Protocol::Icmp,
        ProbeKind::TcpSyn { port: 443 } => Protocol::Tcp443,
        ProbeKind::TcpSyn { .. } => Protocol::Tcp80,
        ProbeKind::Dns { .. } => Protocol::Udp53,
        ProbeKind::Quic => Protocol::Udp443,
    }
}

/// Salts the per-attempt loss coin. Attempt 0 maps to salt 0 so the
/// first attempt reproduces the historical single-attempt stream.
fn attempt_salt(attempt: u8) -> u64 {
    u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Reconstructs a TCP option list realizing a fingerprint's Optionstext.
pub fn fingerprint_options(fp: &TcpFingerprint) -> Vec<TcpOption> {
    fp.optionstext
        .chars()
        .map(|c| match c {
            'M' => TcpOption::Mss(fp.mss),
            'S' => TcpOption::SackPermitted,
            'T' => TcpOption::Timestamps(0xdead_0001, 0),
            'N' => TcpOption::Nop,
            'W' => TcpOption::WindowScale(fp.wscale),
            'E' => TcpOption::EndOfList,
            other => unreachable!("unknown option mnemonic {other}"),
        })
        .collect()
}

fn qname_hash(name: &str) -> u128 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    u128::from(h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::ProtoSet;

    fn net() -> Internet {
        Internet::build(Scale::tiny()).with_faults(FaultConfig::lossless())
    }

    fn find_host(net: &Internet, day: Day, want: Protocol) -> Addr {
        net.population()
            .enumerate_responsive(day)
            .into_iter()
            .find(|(_, protos, _)| protos.contains(want))
            .map(|(a, ..)| a)
            .expect("responsive host")
    }

    #[test]
    fn icmp_echo_end_to_end() {
        let net = net();
        let day = Day(100);
        let dst = find_host(&net, day, Protocol::Icmp);
        let rs = net.probe(dst, &ProbeKind::IcmpEcho { size: 64 }, day);
        assert_eq!(rs, vec![Response::EchoReply { fragmented: false }]);
    }

    #[test]
    fn tcp_syn_gets_synack_with_fingerprint() {
        let net = net();
        let day = Day(100);
        let dst = find_host(&net, day, Protocol::Tcp80);
        let rs = net.probe(dst, &ProbeKind::TcpSyn { port: 80 }, day);
        assert!(matches!(rs.as_slice(), [Response::SynAck { .. }]));
    }

    #[test]
    fn dark_space_is_silent() {
        let net = net();
        let rs = net.probe("3fff::1".parse().unwrap(), &ProbeKind::IcmpEcho { size: 64 }, Day(5));
        assert!(rs.is_empty());
    }

    #[test]
    fn gfw_injects_for_blocked_domain_on_dark_chinese_address() {
        let net = net();
        let day = crate::time::events::GFW_ERA3.0.plus(5);
        let ct = net.registry().by_asn(4134).unwrap();
        let info = net.registry().get(ct);
        // A dark (non-host) address inside China Telecom's space.
        let dst = Addr(info.prefixes[0].network().0 | 0xdead_beef);
        assert!(net.population().lookup(dst, day).is_none(), "address must be dark");
        let rs = net.probe(dst, &ProbeKind::Dns { qname: "www.google.com".into() }, day);
        assert!(rs.len() >= 2, "GFW injected {} responses", rs.len());
        for r in &rs {
            match r {
                Response::Dns(m) => assert!(crate::gfw::looks_injected(m)),
                other => panic!("unexpected {other:?}"),
            }
        }
        // Same address, unblocked domain: silence.
        let rs2 = net.probe(dst, &ProbeKind::Dns { qname: "harmless.example".into() }, day);
        assert!(rs2.is_empty());
        // Same address, outside an era: silence.
        let rs3 = net.probe(dst, &ProbeKind::Dns { qname: "www.google.com".into() }, Day(100));
        assert!(rs3.is_empty());
    }

    #[test]
    fn tbt_pmtu_cache_shared_per_backend() {
        let net = net();
        let day = Day(100);
        let g = net
            .population()
            .aliased_groups(day)
            .find(|g| {
                matches!(
                    g.kind,
                    crate::population::GroupKind::Aliased {
                        backends: crate::registry::BackendMode::Single,
                        ..
                    }
                ) && g.protos.contains(Protocol::Icmp)
            })
            .expect("single-host alias");
        let a = g.prefix.random_addr(1);
        let b = g.prefix.random_addr(2);
        // Baseline: no fragmentation.
        assert_eq!(
            net.probe(a, &ProbeKind::IcmpEcho { size: 1300 }, day),
            vec![Response::EchoReply { fragmented: false }]
        );
        // Seed the cache via one address...
        net.probe(a, &ProbeKind::TooBig { mtu: 1280 }, day);
        // ...and the sibling address fragments too: one shared cache.
        assert_eq!(
            net.probe(b, &ProbeKind::IcmpEcho { size: 1300 }, day),
            vec![Response::EchoReply { fragmented: true }]
        );
        net.reset_state();
        assert_eq!(
            net.probe(b, &ProbeKind::IcmpEcho { size: 1300 }, day),
            vec![Response::EchoReply { fragmented: false }]
        );
    }

    #[test]
    fn traceroute_hops_expire() {
        let net = net();
        let day = Day(100);
        let dst = find_host(&net, day, Protocol::Icmp);
        let plen = net.path_len(dst);
        let r =
            net.probe_ttl(dst, 2, &ProbeKind::IcmpEcho { size: 16 }, day).expect("hop 2 answers");
        assert!(matches!(r, Response::TimeExceeded { .. }));
        let r2 = net.probe_ttl(dst, plen, &ProbeKind::IcmpEcho { size: 16 }, day);
        assert_eq!(r2, Some(Response::EchoReply { fragmented: false }));
    }

    #[test]
    fn wire_path_agrees_with_semantic_path() {
        let net = net();
        let day = Day(200);
        let src = net.registry().vantage_addr();
        // ICMP
        let dst = find_host(&net, day, Protocol::Icmp);
        let probe = Packet {
            ipv6: Ipv6Header::new(src, dst, 64),
            transport: Transport::Icmpv6(Icmpv6::EchoRequest {
                ident: 9,
                seq: 1,
                payload: vec![0; 32],
            }),
        };
        let replies = net.send_bytes(&probe.to_bytes(), day);
        assert_eq!(replies.len(), net.probe(dst, &ProbeKind::IcmpEcho { size: 32 }, day).len());
        let parsed = Packet::parse(&replies[0]).unwrap();
        assert_eq!(parsed.ipv6.src, dst);
        assert!(matches!(
            parsed.transport,
            Transport::Icmpv6(Icmpv6::EchoReply { ident: 9, seq: 1, .. })
        ));
        // TCP fingerprint options survive the wire.
        let dst80 = find_host(&net, day, Protocol::Tcp80);
        let syn = Packet {
            ipv6: Ipv6Header::new(src, dst80, 64),
            transport: Transport::Tcp(TcpSegment::syn(80, 44123, 7)),
        };
        let replies = net.send_bytes(&syn.to_bytes(), day);
        assert_eq!(replies.len(), 1);
        let parsed = Packet::parse(&replies[0]).unwrap();
        let semantic = net.probe(dst80, &ProbeKind::TcpSyn { port: 80 }, day);
        let Response::SynAck { fp } = &semantic[0] else { panic!() };
        match parsed.transport {
            Transport::Tcp(seg) => {
                assert!(seg.flags.syn && seg.flags.ack);
                assert_eq!(seg.optionstext(), fp.optionstext);
                assert_eq!(seg.window, fp.window);
                assert_eq!(seg.mss(), Some(fp.mss));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn wire_dns_query_roundtrip() {
        let net = net();
        let day = Day(300);
        let src = net.registry().vantage_addr();
        let dst = net
            .population()
            .enumerate_responsive(day)
            .into_iter()
            .find(|(_, p, _)| p.contains(Protocol::Udp53))
            .map(|(a, ..)| a)
            .expect("dns host");
        let q = DnsMessage::aaaa_query(0x4242, "www.google.com");
        let probe = Packet {
            ipv6: Ipv6Header::new(src, dst, 64),
            transport: Transport::Udp(UdpDatagram {
                src_port: 53535,
                dst_port: 53,
                payload: q.to_bytes(),
            }),
        };
        let replies = net.send_bytes(&probe.to_bytes(), day);
        assert_eq!(replies.len(), 1);
        let parsed = Packet::parse(&replies[0]).unwrap();
        match parsed.transport {
            Transport::Udp(d) => {
                assert_eq!(d.src_port, 53);
                let msg = DnsMessage::parse(&d.payload).unwrap();
                assert!(msg.is_response);
                assert_eq!(msg.id, 0x4242, "transaction id echoed");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn controlled_domain_logs_resolver_sources() {
        let net = net();
        let day = Day(300);
        // Find an open resolver.
        let resolver = net
            .population()
            .enumerate_responsive(day)
            .into_iter()
            .filter(|(_, p, _)| p.contains(Protocol::Udp53))
            .map(|(a, ..)| a)
            .find(|a| {
                net.population().lookup(*a, day).and_then(|v| v.dns)
                    == Some(DnsBehavior::OpenResolver)
            });
        let Some(resolver) = resolver else {
            // Tiny scale may have no resolver; acceptable.
            return;
        };
        let q = format!("abc123.{CONTROLLED_DOMAIN}");
        let rs = net.probe(resolver, &ProbeKind::Dns { qname: q.clone() }, day);
        assert_eq!(rs.len(), 1);
        let log = net.take_ns_log();
        assert_eq!(log, vec![(resolver, q)]);
    }

    #[test]
    fn fault_injection_drops_probes() {
        let lossy = Internet::build(Scale::tiny())
            .with_faults(FaultConfig::lossless().with_drop_permille(500));
        let day = Day(100);
        let targets: Vec<Addr> = lossy
            .population()
            .enumerate_responsive(day)
            .into_iter()
            .filter(|(_, p, _)| p.contains(Protocol::Icmp))
            .map(|(a, ..)| a)
            .take(400)
            .collect();
        let answered = targets
            .iter()
            .filter(|a| !lossy.probe(**a, &ProbeKind::IcmpEcho { size: 16 }, day).is_empty())
            .count();
        let rate = answered as f64 / targets.len() as f64;
        assert!((0.3..0.7).contains(&rate), "answer rate {rate} under 50% loss");
    }

    #[test]
    fn retries_see_independent_loss_coins() {
        let lossy = Internet::build(Scale::tiny())
            .with_faults(FaultConfig::lossless().with_drop_permille(500));
        let day = Day(100);
        let targets: Vec<Addr> = lossy
            .population()
            .enumerate_responsive(day)
            .into_iter()
            .filter(|(_, p, _)| p.contains(Protocol::Icmp))
            .map(|(a, ..)| a)
            .take(400)
            .collect();
        // Three salted attempts: residual loss should be ~0.5³ = 12.5%,
        // far below the 50% a single attempt sees.
        let answered = targets
            .iter()
            .filter(|a| {
                (0..3).any(|att| {
                    !lossy
                        .probe_attempt(**a, &ProbeKind::IcmpEcho { size: 16 }, day, att)
                        .is_empty()
                })
            })
            .count();
        let rate = answered as f64 / targets.len() as f64;
        assert!(rate > 0.78, "3-attempt answer rate {rate} under 50% loss");
        // And attempt 0 is the historical probe() stream.
        let a = targets[0];
        assert_eq!(
            lossy.probe(a, &ProbeKind::IcmpEcho { size: 16 }, day),
            lossy.probe_attempt(a, &ProbeKind::IcmpEcho { size: 16 }, day, 0),
        );
    }

    #[test]
    fn per_protocol_loss_override_only_hits_that_protocol() {
        let net = Internet::build(Scale::tiny())
            .with_faults(FaultConfig::lossless().with_proto_drop(Protocol::Udp53, 1000));
        let day = Day(100);
        let dst = find_host(&net, day, Protocol::Icmp);
        assert!(!net.probe(dst, &ProbeKind::IcmpEcho { size: 16 }, day).is_empty());
        let dns = find_host(&net, day, Protocol::Udp53);
        assert!(net.probe(dns, &ProbeKind::Dns { qname: "a.example".into() }, day).is_empty());
    }

    #[test]
    fn vantage_outage_silences_everything() {
        let net = Internet::build(Scale::tiny()).with_faults(
            FaultConfig::lossless().with_outage(crate::faults::Outage::vantage(Day(99), Day(101))),
        );
        let dst = find_host(&net, Day(100), Protocol::Icmp);
        assert!(net.probe(dst, &ProbeKind::IcmpEcho { size: 16 }, Day(100)).is_empty());
        assert!(net.probe_ttl(dst, 2, &ProbeKind::IcmpEcho { size: 16 }, Day(100)).is_none());
        // The window is half-open: the day after, service resumes.
        assert!(!net.probe(dst, &ProbeKind::IcmpEcho { size: 16 }, Day(101)).is_empty());
        assert!(net.counters().faults_dropped.get() >= 2);
    }

    #[test]
    fn asn_outage_withdraws_routes_including_gfw_injection() {
        let day = crate::time::events::GFW_ERA3.0.plus(5);
        let net = Internet::build(Scale::tiny()).with_faults(
            FaultConfig::lossless().with_outage(crate::faults::Outage::asn(4134, day, day.plus(2))),
        );
        let ct = net.registry().by_asn(4134).unwrap();
        let info = net.registry().get(ct);
        let dst = Addr(info.prefixes[0].network().0 | 0xdead_beef);
        // During the outage even the on-path injector has nothing to
        // intercept — the route is withdrawn.
        assert!(net.probe(dst, &ProbeKind::Dns { qname: "www.google.com".into() }, day).is_empty());
        // After it, injection resumes.
        assert!(!net
            .probe(dst, &ProbeKind::Dns { qname: "www.google.com".into() }, day.plus(2))
            .is_empty());
    }

    #[test]
    fn duplication_delivers_twice() {
        let net = Internet::build(Scale::tiny())
            .with_faults(FaultConfig::lossless().with_duplicate_permille(1000));
        let day = Day(100);
        let dst = find_host(&net, day, Protocol::Icmp);
        let rs = net.probe(dst, &ProbeKind::IcmpEcho { size: 16 }, day);
        assert_eq!(rs.len(), 2);
        assert_eq!(rs[0], rs[1]);
        assert_eq!(net.counters().faults_duplicated.get(), 1);
    }

    #[test]
    fn icmp_rate_limit_caps_time_exceeded_per_router_per_day() {
        let net = Internet::build(Scale::tiny()).with_faults(
            FaultConfig::lossless()
                .with_icmp_rate_limit(crate::faults::IcmpRateLimit { per_day: 3 }),
        );
        let day = Day(100);
        let dst = find_host(&net, day, Protocol::Icmp);
        // Same router interface answers hop 2 every time; budget is 3/day.
        let answers = (0..10)
            .filter(|_| net.probe_ttl(dst, 2, &ProbeKind::IcmpEcho { size: 16 }, day).is_some())
            .count();
        assert_eq!(answers, 3);
        assert_eq!(net.counters().faults_rate_limited.get(), 7);
        // Next day the budget refills.
        assert!(net.probe_ttl(dst, 2, &ProbeKind::IcmpEcho { size: 16 }, day.plus(1)).is_some());
    }

    #[test]
    fn icmp_rate_limit_starves_toobig_cache_seeding() {
        let net = Internet::build(Scale::tiny()).with_faults(
            FaultConfig::lossless()
                .with_icmp_rate_limit(crate::faults::IcmpRateLimit { per_day: 0 }),
        );
        let day = Day(100);
        let dst = find_host(&net, day, Protocol::Icmp);
        net.probe(dst, &ProbeKind::TooBig { mtu: 1280 }, day);
        // The Too Big was absorbed by the rate limiter: no fragmentation.
        assert_eq!(
            net.probe(dst, &ProbeKind::IcmpEcho { size: 1300 }, day),
            vec![Response::EchoReply { fragmented: false }]
        );
    }

    #[test]
    fn corruption_flips_wire_bytes_deterministically() {
        let make = || {
            Internet::build(Scale::tiny())
                .with_faults(FaultConfig::lossless().with_corrupt_permille(1000))
        };
        let net = make();
        let day = Day(100);
        let src = net.registry().vantage_addr();
        let dst = find_host(&net, day, Protocol::Icmp);
        let probe = Packet {
            ipv6: Ipv6Header::new(src, dst, 64),
            transport: Transport::Icmpv6(Icmpv6::EchoRequest {
                ident: 1,
                seq: 1,
                payload: vec![0; 32],
            }),
        };
        let corrupted = net.send_bytes(&probe.to_bytes(), day);
        assert_eq!(corrupted.len(), 1);
        let clean = Internet::build(Scale::tiny())
            .with_faults(FaultConfig::lossless())
            .send_bytes(&probe.to_bytes(), day);
        assert_ne!(corrupted, clean, "bytes must differ in flight");
        assert_eq!(net.counters().faults_corrupted.get(), 1);
        // Deterministic: a fresh simulator corrupts identically.
        assert_eq!(make().send_bytes(&probe.to_bytes(), day), corrupted);
        // And the parser treats the garbage as untrusted input (no panic).
        let _ = Packet::parse(&corrupted[0]);
    }

    #[test]
    fn quic_version_negotiation() {
        let net = net();
        let day = Day(600);
        let dst = net
            .population()
            .enumerate_responsive(day)
            .into_iter()
            .find(|(_, p, _)| p.contains(Protocol::Udp443))
            .map(|(a, ..)| a)
            .expect("quic host");
        assert_eq!(net.probe(dst, &ProbeKind::Quic, day), vec![Response::QuicVn]);
    }

    #[test]
    fn proto_set_gates_everything() {
        let net = net();
        let day = Day(100);
        // An ICMP-only host must not answer TCP or QUIC.
        let only_icmp = net
            .population()
            .enumerate_responsive(day)
            .into_iter()
            .find(|(_, p, _)| *p == ProtoSet::of(&[Protocol::Icmp]))
            .map(|(a, ..)| a)
            .expect("icmp-only host");
        assert!(net.probe(only_icmp, &ProbeKind::Quic, day).is_empty());
        assert!(net.probe(only_icmp, &ProbeKind::TcpSyn { port: 80 }, day).is_empty());
        assert!(!net.probe(only_icmp, &ProbeKind::IcmpEcho { size: 8 }, day).is_empty());
    }
}
