//! Paper-style text tables and human-readable number formatting.
//!
//! The experiment binaries print tables that visually mirror the paper's
//! (same row/column structure), so side-by-side comparison is one glance.

/// Formats a count the way the paper does: `1.7 M`, `550.6 k`, `832`.
pub fn human(n: u64) -> String {
    if n >= 1_000_000 {
        format!("{:.1} M", n as f64 / 1e6)
    } else if n >= 1_000 {
        format!("{:.1} k", n as f64 / 1e3)
    } else {
        n.to_string()
    }
}

/// Formats a share as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1} %", x * 100.0)
}

/// A simple aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> TextTable {
        TextTable { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) -> &mut TextTable {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(r[c].len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    line.push_str("  ");
                }
                // Right-align numerics (heuristic: starts with a digit),
                // left-align labels.
                if cell.chars().next().is_some_and(|ch| ch.is_ascii_digit()) {
                    line.push_str(&format!("{cell:>width$}", width = widths[c]));
                } else {
                    line.push_str(&format!("{cell:<width$}", width = widths[c]));
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_formatting() {
        assert_eq!(human(1_700_000), "1.7 M");
        assert_eq!(human(550_600), "550.6 k");
        assert_eq!(human(832), "832");
        assert_eq!(human(0), "0");
    }

    #[test]
    fn pct_formatting() {
        assert_eq!(pct(0.953), "95.3 %");
        assert_eq!(pct(0.0), "0.0 %");
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(&["Year", "ICMP", "Total"]);
        t.row(vec!["2018-07-01".into(), "1.7 M".into(), "1.8 M".into()]);
        t.row(vec!["2022-04-07".into(), "3.1 M".into(), "3.2 M".into()]);
        let s = t.render();
        assert!(s.contains("Year"));
        assert_eq!(s.lines().count(), 4);
        assert_eq!(t.len(), 2);
        // Columns aligned: both data lines have the same length.
        let lines: Vec<&str> = s.lines().skip(2).collect();
        assert_eq!(lines[0].len(), lines[1].len());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_checked() {
        TextTable::new(&["a", "b"]).row(vec!["x".into()]);
    }
}
