//! Longitudinal series utilities: resampling, growth and spike detection
//! over per-scan records (the numeric backbone of Figs. 3 and 4).

use serde::{Deserialize, Serialize};

/// A `(day, value)` time series with irregular spacing (scan cadence grows
/// from 1 to 5 days over the window).
///
/// ```
/// use sixdust_analysis::Series;
/// let mut pts: Vec<(u32, u64)> = (0..60).map(|d| (d, 100)).collect();
/// for d in 30..35 { pts[d as usize] = (d, 9_000); } // an injection era
/// let s = Series::new(pts);
/// assert_eq!(s.spike_windows(10.0, 3), vec![(30, 34)]);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// `(day, value)` points in ascending day order.
    pub points: Vec<(u32, u64)>,
}

impl Series {
    /// Builds from points (sorts by day).
    pub fn new(mut points: Vec<(u32, u64)>) -> Series {
        points.sort_by_key(|(d, _)| *d);
        Series { points }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Resamples into fixed-width buckets (mean per bucket) — what a
    /// figure with hundreds of scan rounds needs before plotting.
    pub fn resample(&self, bucket_days: u32) -> Series {
        if self.points.is_empty() || bucket_days == 0 {
            return self.clone();
        }
        let mut out = Vec::new();
        let mut bucket_start = self.points[0].0 / bucket_days * bucket_days;
        let mut sum = 0u64;
        let mut n = 0u64;
        for (d, v) in &self.points {
            let b = d / bucket_days * bucket_days;
            if b != bucket_start && n > 0 {
                out.push((bucket_start, sum / n));
                bucket_start = b;
                sum = 0;
                n = 0;
            }
            sum += v;
            n += 1;
        }
        if let Some(mean) = sum.checked_div(n) {
            out.push((bucket_start, mean));
        }
        Series { points: out }
    }

    /// End-over-start growth factor (`last / first`), ignoring zero starts.
    pub fn growth(&self) -> f64 {
        match (self.points.first(), self.points.last()) {
            (Some((_, a)), Some((_, b))) if *a > 0 => *b as f64 / *a as f64,
            _ => 0.0,
        }
    }

    /// Largest value and its day.
    pub fn peak(&self) -> Option<(u32, u64)> {
        self.points.iter().copied().max_by_key(|(_, v)| *v)
    }

    /// Detects spikes: points exceeding `factor` × the series median.
    /// Returns the spike days — how Fig. 3's injection events stand out.
    pub fn spikes(&self, factor: f64) -> Vec<u32> {
        if self.points.len() < 3 {
            return Vec::new();
        }
        let mut values: Vec<u64> = self.points.iter().map(|(_, v)| *v).collect();
        values.sort_unstable();
        let median = values[values.len() / 2] as f64;
        self.points
            .iter()
            .filter(|(_, v)| *v as f64 > median * factor && *v > 0)
            .map(|(d, _)| *d)
            .collect()
    }

    /// Groups consecutive spike days (gap ≤ `max_gap`) into event windows
    /// `(first_day, last_day)` — one window per GFW era, ideally.
    pub fn spike_windows(&self, factor: f64, max_gap: u32) -> Vec<(u32, u32)> {
        let days = self.spikes(factor);
        let mut out: Vec<(u32, u32)> = Vec::new();
        for d in days {
            match out.last_mut() {
                Some((_, end)) if d.saturating_sub(*end) <= max_gap => *end = d,
                _ => out.push((d, d)),
            }
        }
        out
    }

    /// Mean of the values.
    pub fn mean(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(|(_, v)| *v as f64).sum::<f64>() / self.points.len() as f64
    }

    /// Renders as CSV (`day,value` rows) for external plotting.
    pub fn to_csv(&self, header: &str) -> String {
        let mut out = format!("day,{header}\n");
        for (d, v) in &self.points {
            out.push_str(&format!("{d},{v}\n"));
        }
        out
    }

    /// Lifts one metric out of a live telemetry recorder into a `Series`,
    /// so recorded per-round deltas flow straight into the spike/era and
    /// resampling machinery without an export/import round trip.
    ///
    /// Rounds where the metric was absent (created later, or evicted from
    /// the ring) are simply missing points — the series stays irregular,
    /// which every method here already tolerates.
    ///
    /// ```
    /// use sixdust_analysis::Series;
    /// use sixdust_telemetry::{Registry, SeriesRecorder};
    ///
    /// let reg = Registry::new();
    /// let mut rec = SeriesRecorder::new(reg.clone(), 512);
    /// for day in 0..5u32 {
    ///     reg.counter("scan.udp53.hits").add(100 + u64::from(day));
    ///     rec.record(day);
    /// }
    /// let s = Series::from_telemetry(&rec, "scan.udp53.hits");
    /// assert_eq!(s.len(), 5);
    /// assert_eq!(s.points[0], (0, 100));
    /// ```
    pub fn from_telemetry(recorder: &sixdust_telemetry::SeriesRecorder, metric: &str) -> Series {
        Series::new(recorder.points(metric))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spiky() -> Series {
        let mut pts: Vec<(u32, u64)> = (0..100).map(|d| (d, 100)).collect();
        for d in 40..44 {
            pts[d as usize] = (d, 5000);
        }
        for d in 70..75 {
            pts[d as usize] = (d, 8000);
        }
        Series::new(pts)
    }

    #[test]
    fn construction_sorts() {
        let s = Series::new(vec![(5, 1), (1, 2), (3, 3)]);
        assert_eq!(s.points, vec![(1, 2), (3, 3), (5, 1)]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn resample_means() {
        let s = Series::new(vec![(0, 10), (1, 20), (2, 30), (10, 100)]);
        let r = s.resample(7);
        assert_eq!(r.points, vec![(0, 20), (7, 100)]);
        // Degenerate bucket width leaves the series untouched.
        assert_eq!(s.resample(0), s);
    }

    #[test]
    fn growth_and_peak() {
        let s = Series::new(vec![(0, 100), (50, 150), (100, 180)]);
        assert!((s.growth() - 1.8).abs() < 1e-9);
        assert_eq!(s.peak(), Some((100, 180)));
        assert_eq!(Series::default().growth(), 0.0);
    }

    #[test]
    fn spike_detection_finds_eras() {
        let s = spiky();
        let windows = s.spike_windows(5.0, 3);
        assert_eq!(windows, vec![(40, 43), (70, 74)]);
        // Baseline points are not spikes.
        assert!(!s.spikes(5.0).contains(&10));
    }

    #[test]
    fn spike_windows_merge_within_gap() {
        let mut pts: Vec<(u32, u64)> = (0..50).map(|d| (d, 10)).collect();
        pts[20] = (20, 1000);
        pts[23] = (23, 1000); // gap of 3 merges at max_gap=3
        let s = Series::new(pts);
        assert_eq!(s.spike_windows(5.0, 3), vec![(20, 23)]);
        assert_eq!(s.spike_windows(5.0, 1), vec![(20, 20), (23, 23)]);
    }

    #[test]
    fn csv_rendering() {
        let s = Series::new(vec![(1, 5), (2, 6)]);
        assert_eq!(s.to_csv("udp53"), "day,udp53\n1,5\n2,6\n");
    }

    #[test]
    fn mean_value() {
        let s = Series::new(vec![(0, 10), (1, 30)]);
        assert!((s.mean() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn from_telemetry_lifts_recorded_deltas() {
        let reg = sixdust_telemetry::Registry::new();
        let mut rec = sixdust_telemetry::SeriesRecorder::new(reg.clone(), 512);
        let hits = reg.counter("scan.udp53.hits");
        // Deliberately record out of natural spike shape: baseline, spike,
        // baseline — and confirm the lifted series feeds spike detection.
        for day in 0..30u32 {
            hits.add(if (10..13).contains(&day) { 9_000 } else { 100 });
            rec.record(day);
        }
        let s = Series::from_telemetry(&rec, "scan.udp53.hits");
        assert_eq!(s.len(), 30);
        assert_eq!(s.spike_windows(10.0, 2), vec![(10, 12)]);
        // Metrics the recorder never saw lift to an empty series.
        assert!(Series::from_telemetry(&rec, "scan.icmp.hits").is_empty());
    }

    /// Paper-shaped responsive-count series: a UDP/53 baseline around
    /// 4 500 with GFW-injection eras two orders of magnitude above it
    /// (Fig. 3). Offline spike detection and the online MAD monitor must
    /// agree on where the eras are.
    fn gfw_shaped() -> (Series, Vec<(u32, u32)>) {
        let eras = vec![(330, 430), (650, 800), (940, 1040)];
        let mut pts = Vec::new();
        for day in (0..1100u32).step_by(5) {
            // Mild deterministic jitter so the baseline is not constant.
            let base = 4_500 + u64::from(day % 7) * 40;
            let in_era = eras.iter().any(|&(a, b)| (a..=b).contains(&day));
            pts.push((day, if in_era { 100_000 + u64::from(day % 11) * 500 } else { base }));
        }
        (Series::new(pts), eras)
    }

    #[test]
    fn offline_spikes_and_online_mad_agree_on_gfw_eras() {
        let (series, eras) = gfw_shaped();
        let windows = series.spike_windows(10.0, 5);
        assert_eq!(windows.len(), eras.len(), "offline finds each era once: {windows:?}");
        for (&(start, end), &(wa, wb)) in eras.iter().zip(&windows) {
            assert!(wa >= start && wb <= end, "window ({wa},{wb}) inside era ({start},{end})");
        }

        let flagged = sixdust_telemetry::flag_series(
            &series.points,
            &sixdust_telemetry::MadConfig::default(),
        );
        assert!(!flagged.is_empty());
        // Every day the online monitor flags lies inside an offline era,
        // and every era is caught online from its first scan day on.
        for day in &flagged {
            assert!(
                eras.iter().any(|&(a, b)| (a..=b).contains(day)),
                "online flag at day {day} outside all eras"
            );
        }
        for &(start, end) in &eras {
            let in_era: Vec<u32> =
                flagged.iter().copied().filter(|d| (start..=end).contains(d)).collect();
            assert_eq!(
                in_era.first(),
                Some(&start),
                "era ({start},{end}) flagged from its first scan day"
            );
            assert!(in_era.len() >= ((end - start) / 5) as usize, "era stays flagged throughout");
        }
    }

    #[test]
    fn steady_series_is_clean_for_both_detectors() {
        let pts: Vec<(u32, u64)> =
            (0..400u32).step_by(5).map(|d| (d, 4_500 + u64::from(d % 7) * 40)).collect();
        let series = Series::new(pts);
        assert!(series.spikes(10.0).is_empty());
        assert!(series.spike_windows(10.0, 5).is_empty());
        let flagged = sixdust_telemetry::flag_series(
            &series.points,
            &sixdust_telemetry::MadConfig::default(),
        );
        assert!(flagged.is_empty(), "steady baseline must not alarm: {flagged:?}");
    }
}
