//! Histograms and matrices: aliased prefix sizes (Fig. 5), overlaps
//! (Figs. 7, 10), ASCII rendering helpers.

use std::collections::HashSet;

use serde::{Deserialize, Serialize};
use sixdust_addr::Addr;

/// A histogram over prefix lengths.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlenHistogram {
    counts: Vec<u64>, // one bin per prefix length 0..=128
    total: u64,
}

impl Default for PlenHistogram {
    fn default() -> PlenHistogram {
        PlenHistogram { counts: vec![0; 129], total: 0 }
    }
}

impl PlenHistogram {
    /// Builds from prefix lengths.
    pub fn from_lens(lens: impl IntoIterator<Item = u8>) -> PlenHistogram {
        let mut h = PlenHistogram::default();
        for l in lens {
            h.counts[usize::from(l.min(128))] += 1;
            h.total += 1;
        }
        h
    }

    /// Count at one length.
    pub fn at(&self, len: u8) -> u64 {
        self.counts[usize::from(len)]
    }

    /// Share (0..=1) at one length.
    pub fn share(&self, len: u8) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.at(len) as f64 / self.total as f64
        }
    }

    /// Total prefixes counted.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// `(len, count)` rows for non-empty bins.
    pub fn bins(&self) -> Vec<(u8, u64)> {
        (0..=128u8).filter(|l| self.at(*l) > 0).map(|l| (l, self.at(l))).collect()
    }
}

/// A row-normalized overlap matrix: entry `(i, j)` is the percentage of
/// row `i`'s set also present in set `j` (Fig. 7's convention).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OverlapMatrix {
    /// Row/column labels.
    pub labels: Vec<String>,
    /// Percentages, row-major.
    pub pct: Vec<Vec<f64>>,
}

impl OverlapMatrix {
    /// Builds from labeled address sets.
    pub fn new(sets: &[(String, Vec<Addr>)]) -> OverlapMatrix {
        let hashed: Vec<HashSet<Addr>> =
            sets.iter().map(|(_, v)| v.iter().copied().collect()).collect();
        let mut pct = Vec::with_capacity(sets.len());
        for (i, (_, row_set)) in sets.iter().enumerate() {
            let mut row = Vec::with_capacity(sets.len());
            for (j, hj) in hashed.iter().enumerate() {
                if row_set.is_empty() {
                    row.push(0.0);
                } else if i == j {
                    row.push(100.0);
                } else {
                    let inter = row_set.iter().filter(|a| hj.contains(a)).count();
                    row.push(inter as f64 * 100.0 / row_set.len() as f64);
                }
            }
            pct.push(row);
        }
        OverlapMatrix { labels: sets.iter().map(|(l, _)| l.clone()).collect(), pct }
    }

    /// The overlap percentage of row `i` in column `j`.
    pub fn at(&self, i: usize, j: usize) -> f64 {
        self.pct[i][j]
    }

    /// Renders as an aligned text matrix.
    pub fn render(&self) -> String {
        let w = self.labels.iter().map(|l| l.len()).max().unwrap_or(6).max(6);
        let mut out = format!("{:<w$}", "");
        for l in &self.labels {
            out.push_str(&format!(" {l:>w$}"));
        }
        out.push('\n');
        for (i, l) in self.labels.iter().enumerate() {
            out.push_str(&format!("{l:<w$}"));
            for j in 0..self.labels.len() {
                out.push_str(&format!(" {:>w$.1}", self.pct[i][j]));
            }
            out.push('\n');
        }
        out
    }
}

/// Tiny ASCII sparkline for time series (log-friendly output in the
/// experiment binaries).
pub fn sparkline(values: &[u64]) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().copied().max().unwrap_or(0).max(1);
    values.iter().map(|v| GLYPHS[((*v as f64 / max as f64) * 7.0).round() as usize]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_shares() {
        let h = PlenHistogram::from_lens([64, 64, 64, 48, 28]);
        assert_eq!(h.total(), 5);
        assert_eq!(h.at(64), 3);
        assert!((h.share(64) - 0.6).abs() < 1e-9);
        assert_eq!(h.bins(), vec![(28, 1), (48, 1), (64, 3)]);
    }

    #[test]
    fn overlap_matrix_semantics() {
        let sets = vec![
            ("a".to_string(), vec![Addr(1), Addr(2), Addr(3), Addr(4)]),
            ("b".to_string(), vec![Addr(3), Addr(4)]),
            ("c".to_string(), vec![Addr(99)]),
        ];
        let m = OverlapMatrix::new(&sets);
        assert_eq!(m.at(0, 0), 100.0);
        assert_eq!(m.at(0, 1), 50.0, "half of a is in b");
        assert_eq!(m.at(1, 0), 100.0, "all of b is in a");
        assert_eq!(m.at(2, 0), 0.0);
        let s = m.render();
        assert!(s.contains("100.0"));
    }

    #[test]
    fn sparkline_scales() {
        let s = sparkline(&[0, 5, 10]);
        assert_eq!(s.chars().count(), 3);
        assert!(s.ends_with('█'));
    }
}
