//! Cumulative distributions across ASes (Figs. 2, 8, 9).

use serde::{Deserialize, Serialize};

/// A CDF over ranked category counts (e.g. addresses per AS).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RankCdf {
    /// Counts sorted descending.
    pub counts: Vec<u64>,
    /// Total across categories.
    pub total: u64,
}

impl RankCdf {
    /// Builds from unordered per-category counts.
    pub fn new(mut counts: Vec<u64>) -> RankCdf {
        counts.retain(|c| *c > 0);
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let total = counts.iter().sum();
        RankCdf { counts, total }
    }

    /// Number of categories (ASes).
    pub fn categories(&self) -> usize {
        self.counts.len()
    }

    /// Share (0..=1) of the total held by the top category.
    pub fn top_share(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.counts.first().map(|c| *c as f64 / self.total as f64).unwrap_or(0.0)
    }

    /// Cumulative share covered by the top `k` categories.
    pub fn share_of_top(&self, k: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let s: u64 = self.counts.iter().take(k).sum();
        s as f64 / self.total as f64
    }

    /// Smallest number of categories covering at least `share` (0..=1) of
    /// the total.
    pub fn categories_for_share(&self, share: f64) -> usize {
        let target = (self.total as f64 * share).ceil() as u64;
        let mut acc = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= target {
                return i + 1;
            }
        }
        self.counts.len()
    }

    /// `(rank, cumulative_share)` series for plotting (log-x CDF like
    /// Fig. 2). At most `points` entries, geometrically spaced.
    pub fn series(&self, points: usize) -> Vec<(usize, f64)> {
        if self.counts.is_empty() {
            return Vec::new();
        }
        let mut cum = Vec::with_capacity(self.counts.len());
        let mut acc = 0u64;
        for c in &self.counts {
            acc += c;
            cum.push(acc as f64 / self.total as f64);
        }
        let n = cum.len();
        let mut ranks: Vec<usize> = Vec::new();
        let mut r = 1usize;
        while r <= n {
            ranks.push(r);
            let next = (r as f64 * (n as f64).powf(1.0 / points as f64)).ceil() as usize;
            r = next.max(r + 1);
        }
        if *ranks.last().unwrap_or(&0) != n {
            ranks.push(n);
        }
        ranks.into_iter().map(|r| (r, cum[r - 1])).collect()
    }

    /// Gini-style skewness indicator in [0, 1]: 0 = perfectly even.
    pub fn skew(&self) -> f64 {
        let n = self.counts.len();
        if n <= 1 || self.total == 0 {
            return 0.0;
        }
        // Normalized area between the Lorenz curve of the sorted counts
        // and the uniform line.
        let mut acc = 0u64;
        let mut area = 0f64;
        for c in self.counts.iter().rev() {
            // ascending order
            acc += c;
            area += acc as f64 / self.total as f64;
        }
        let uniform_area = (n as f64 + 1.0) / 2.0;
        ((uniform_area - area) / uniform_area * 2.0).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_shares() {
        let cdf = RankCdf::new(vec![10, 30, 60]);
        assert_eq!(cdf.total, 100);
        assert_eq!(cdf.categories(), 3);
        assert!((cdf.top_share() - 0.6).abs() < 1e-9);
        assert!((cdf.share_of_top(2) - 0.9).abs() < 1e-9);
        assert_eq!(cdf.categories_for_share(0.5), 1);
        assert_eq!(cdf.categories_for_share(0.95), 3);
    }

    #[test]
    fn zeros_removed() {
        let cdf = RankCdf::new(vec![0, 5, 0, 5]);
        assert_eq!(cdf.categories(), 2);
    }

    #[test]
    fn skew_ordering() {
        let even = RankCdf::new(vec![10; 10]);
        let skewed = RankCdf::new(vec![91, 1, 1, 1, 1, 1, 1, 1, 1, 1]);
        assert!(even.skew() < 0.05, "{}", even.skew());
        assert!(skewed.skew() > 0.5, "{}", skewed.skew());
        assert!(skewed.skew() > even.skew());
    }

    #[test]
    fn series_monotone_and_complete() {
        let cdf = RankCdf::new((1..=500u64).collect());
        let s = cdf.series(20);
        assert!(s.len() <= 25);
        assert_eq!(s.last().unwrap().0, 500);
        assert!((s.last().unwrap().1 - 1.0).abs() < 1e-9);
        for w in s.windows(2) {
            assert!(w[1].0 > w[0].0);
            assert!(w[1].1 >= w[0].1);
        }
    }

    #[test]
    fn empty_cdf() {
        let cdf = RankCdf::new(vec![]);
        assert_eq!(cdf.top_share(), 0.0);
        assert_eq!(cdf.skew(), 0.0);
        assert!(cdf.series(10).is_empty());
    }
}
