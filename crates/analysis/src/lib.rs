//! # sixdust-analysis — measurement analysis toolkit
//!
//! The numeric machinery behind the paper's figures and tables:
//!
//! * [`cdf`] — ranked cumulative distributions across ASes (Figs. 2, 8, 9)
//!   with skew/coverage summaries ("top AS holds 7.9 %", "50 % in 14
//!   ASes").
//! * [`hist`] — prefix-length histograms (Fig. 5), row-normalized overlap
//!   matrices (Figs. 7 and 10), and ASCII sparklines for the longitudinal
//!   series (Figs. 3 and 4).
//! * [`series`] — irregular time series: resampling, growth, spike/era
//!   detection and CSV export for the longitudinal records.
//! * [`table`] — paper-style text tables with `1.7 M`-style formatting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cdf;
pub mod hist;
pub mod series;
pub mod table;

pub use cdf::RankCdf;
pub use hist::{sparkline, OverlapMatrix, PlenHistogram};
pub use series::Series;
pub use table::{human, pct, TextTable};
