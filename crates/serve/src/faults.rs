//! Seeded fault injection for the distribution tier.
//!
//! The scan path got chaos-grade faults in the `sixdust-net`
//! [`FaultConfig`](sixdust_net::FaultConfig); this module is its
//! serving-side sibling, expressed on the virtual-microsecond timeline
//! the front ends run on instead of the scan-day axis:
//!
//! * **mirror outage windows** — one edge mirror drops off the network
//!   for `[from_us, until_us)`: requests toward it get no answer at all
//!   and its sync attempts fail;
//! * **slow mirrors** — a mirror's served latency is inflated by a
//!   permille factor (a congested path, an overloaded box), the
//!   condition hedged requests exist for;
//! * **origin publish blackouts** — the origin cannot publish and
//!   mirrors cannot sync for a window; mirrors degrade to serving their
//!   last-good generation (stale-while-revalidate);
//! * **sync corruption** — a mirror's sync transfer has a byte flipped
//!   in flight with some probability, exercising the checksum-first
//!   torn-sync rejection path.
//!
//! Every stochastic decision is a pure function of `(seed, question)`
//! via [`sixdust_addr::prf`], so a chaos day replays byte-identically.
//! The shape mirrors `sixdust-net`: serde with `#[serde(default)]`, a
//! [`ServeFaultConfig::builder`], chainable `with_*` methods, and a
//! [`ServeFaultConfig::lossless`] all-off preset.

use serde::{Deserialize, Serialize};

use sixdust_addr::prf;

const TAG_SYNC_CORRUPT: u64 = 0x5F_C0DE;

/// A scheduled outage of one edge mirror: the mirror answers nothing
/// (requests and sync attempts both fail) for `[from_us, until_us)` on
/// the virtual-day timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MirrorOutage {
    /// Index of the mirror that goes dark.
    pub mirror: usize,
    /// Start of the outage, microseconds into the day (inclusive).
    pub from_us: u64,
    /// End of the outage, microseconds into the day (exclusive).
    pub until_us: u64,
}

impl MirrorOutage {
    /// Whether the window covers `at_us`.
    pub fn active(&self, at_us: u64) -> bool {
        self.from_us <= at_us && at_us < self.until_us
    }
}

/// A window during which the origin cannot publish new generations and
/// mirrors cannot sync — the condition stale-while-revalidate exists
/// for. `[from_us, until_us)` on the virtual-day timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Blackout {
    /// Start of the blackout, microseconds into the day (inclusive).
    pub from_us: u64,
    /// End of the blackout, microseconds into the day (exclusive).
    pub until_us: u64,
}

impl Blackout {
    /// Whether the window covers `at_us`.
    pub fn active(&self, at_us: u64) -> bool {
        self.from_us <= at_us && at_us < self.until_us
    }
}

/// A persistently slow mirror: every served latency is multiplied by
/// `(1000 + inflate_permille) / 1000`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlowMirror {
    /// Index of the slow mirror.
    pub mirror: usize,
    /// Extra latency in permille of the true latency (4000 = 5× slower).
    pub inflate_permille: u32,
}

/// Fault injection knobs for the distribution tier.
///
/// Construct via [`ServeFaultConfig::builder`] or the chainable `with_*`
/// methods; [`ServeFaultConfig::lossless`] is the all-off preset and
/// [`ServeFaultConfig::chaos`] is a representative bad day.
///
/// ```
/// use sixdust_serve::faults::ServeFaultConfig;
/// let faults = ServeFaultConfig::builder()
///     .with_mirror_outage(1, 3_600_000_000, 7_200_000_000)
///     .with_origin_blackout(40_000_000_000, 60_000_000_000)
///     .with_sync_corrupt_permille(100);
/// assert!(faults.mirror_down(1, 3_600_000_000));
/// assert!(!faults.mirror_down(1, 7_200_000_000));
/// assert!(faults.origin_blackout(50_000_000_000));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
#[serde(default)]
pub struct ServeFaultConfig {
    /// Fault-stream seed, mixed into every stochastic fault decision.
    /// Varying it yields a different fault *realization*; equal seed and
    /// config replay byte-identically.
    pub seed: u64,
    /// Scheduled per-mirror outage windows.
    pub mirror_outages: Vec<MirrorOutage>,
    /// Persistently slow mirrors (latency inflation).
    pub slow_mirrors: Vec<SlowMirror>,
    /// Windows during which the origin cannot publish and syncs fail.
    pub origin_blackouts: Vec<Blackout>,
    /// Probability (permille) that one artifact's sync transfer has a
    /// byte flipped in flight. The flip is deterministic per
    /// `(mirror, round, artifact, attempt)` — transient, so a rejected
    /// sync re-rolls on retry; the mirror's checksum-first validation
    /// must reject it wholesale (no torn generation).
    pub sync_corrupt_permille: u32,
}

impl ServeFaultConfig {
    /// Every fault off — the deterministic-world preset unit tests use.
    pub fn lossless() -> ServeFaultConfig {
        ServeFaultConfig::default()
    }

    /// Starts from the all-off preset.
    pub fn builder() -> ServeFaultConfig {
        ServeFaultConfig::lossless()
    }

    /// A representative bad day over a tier of `mirrors` mirrors: one
    /// mid-morning outage of mirror 0, an early-afternoon outage of
    /// mirror 1 (when present), the last mirror 5× slow all day, an
    /// origin publish blackout across the afternoon, and a 15 %
    /// per-artifact sync-corruption rate.
    pub fn chaos(seed: u64, mirrors: usize) -> ServeFaultConfig {
        ServeFaultConfig::chaos_scaled(seed, mirrors, 86_400_000_000)
    }

    /// [`ServeFaultConfig::chaos`] with its windows placed at the same
    /// fractions of an arbitrary `day_micros` — so a compressed
    /// quick-mode day (or a multi-day horizon) injects the same story:
    /// mirror 0 out across [1/4, 3/8) of the day, an origin blackout
    /// over [13/24, 19/24), mirror 1 out across [1/2, 7/12), the last
    /// mirror slow throughout. Identical to `chaos` at the standard
    /// 86,400-second day.
    pub fn chaos_scaled(seed: u64, mirrors: usize, day_micros: u64) -> ServeFaultConfig {
        let slice = day_micros / 24;
        let mut faults = ServeFaultConfig::builder()
            .with_seed(seed)
            .with_mirror_outage(0, 6 * slice, 9 * slice)
            .with_origin_blackout(13 * slice, 19 * slice)
            .with_sync_corrupt_permille(150);
        if mirrors > 1 {
            faults = faults
                .with_mirror_outage(1, 12 * slice, 14 * slice)
                .with_slow_mirror(mirrors - 1, 4_000);
        }
        faults
    }

    /// Returns the config with the fault-stream seed replaced.
    pub fn with_seed(mut self, seed: u64) -> ServeFaultConfig {
        self.seed = seed;
        self
    }

    /// Returns the config with a mirror outage window added.
    pub fn with_mirror_outage(mut self, mirror: usize, from_us: u64, until_us: u64) -> Self {
        self.mirror_outages.push(MirrorOutage { mirror, from_us, until_us });
        self
    }

    /// Returns the config with a slow mirror added.
    pub fn with_slow_mirror(mut self, mirror: usize, inflate_permille: u32) -> Self {
        self.slow_mirrors.push(SlowMirror { mirror, inflate_permille });
        self
    }

    /// Returns the config with an origin publish blackout added.
    pub fn with_origin_blackout(mut self, from_us: u64, until_us: u64) -> Self {
        self.origin_blackouts.push(Blackout { from_us, until_us });
        self
    }

    /// Returns the config with the sync corruption rate replaced.
    pub fn with_sync_corrupt_permille(mut self, permille: u32) -> Self {
        self.sync_corrupt_permille = permille;
        self
    }

    /// Whether mirror `mirror` is unreachable at `at_us`.
    pub fn mirror_down(&self, mirror: usize, at_us: u64) -> bool {
        self.mirror_outages.iter().any(|o| o.mirror == mirror && o.active(at_us))
    }

    /// Whether the origin is blacked out (no publishes, no syncs) at
    /// `at_us`.
    pub fn origin_blackout(&self, at_us: u64) -> bool {
        self.origin_blackouts.iter().any(|b| b.active(at_us))
    }

    /// The latency inflation for `mirror` in permille of the true
    /// latency (max-composed across matching entries; 0 = full speed).
    pub fn inflate_permille(&self, mirror: usize) -> u32 {
        self.slow_mirrors
            .iter()
            .filter(|s| s.mirror == mirror)
            .map(|s| s.inflate_permille)
            .max()
            .unwrap_or(0)
    }

    /// Inflates a served latency for `mirror`.
    pub fn inflate_latency(&self, mirror: usize, latency_us: u64) -> u64 {
        let inflate = u64::from(self.inflate_permille(mirror));
        latency_us.saturating_mul(1_000 + inflate) / 1_000
    }

    /// Whether the `attempt`-th sync transfer of
    /// `(mirror, round, artifact)` is corrupted in flight. Pure function
    /// of the fault seed, so the same transfer is corrupted (or not) on
    /// every replay; the attempt counter salts the draw so a *re*-sync
    /// of a rejected generation re-rolls instead of failing forever
    /// (in-flight corruption is transient, not sticky).
    pub fn corrupt_sync(&self, mirror: usize, round: u64, artifact: usize, attempt: u64) -> bool {
        if self.sync_corrupt_permille == 0 {
            return false;
        }
        let value = (mirror as u128) << 96
            | u128::from(round) << 64
            | (artifact as u128) << 48
            | u128::from(attempt);
        prf::chance(
            self.seed,
            value,
            TAG_SYNC_CORRUPT,
            u64::from(self.sync_corrupt_permille.min(1_000)),
            1_000,
        )
    }

    /// The byte position to flip in a corrupted transfer of `len`
    /// encoded bytes (deterministic per transfer identity).
    pub fn corrupt_position(
        &self,
        mirror: usize,
        round: u64,
        artifact: usize,
        attempt: u64,
        len: usize,
    ) -> usize {
        if len == 0 {
            return 0;
        }
        let value = (mirror as u128) << 96
            | u128::from(round) << 64
            | (artifact as u128) << 48
            | u128::from(attempt);
        (prf::uniform(self.seed, value, TAG_SYNC_CORRUPT + 1, len as u64)) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_are_half_open() {
        let f = ServeFaultConfig::builder()
            .with_mirror_outage(2, 100, 200)
            .with_origin_blackout(50, 60);
        assert!(!f.mirror_down(2, 99));
        assert!(f.mirror_down(2, 100));
        assert!(f.mirror_down(2, 199));
        assert!(!f.mirror_down(2, 200));
        assert!(!f.mirror_down(1, 150), "other mirrors unaffected");
        assert!(f.origin_blackout(50));
        assert!(!f.origin_blackout(60));
    }

    #[test]
    fn inflation_max_composes_and_defaults_to_zero() {
        let f = ServeFaultConfig::builder().with_slow_mirror(1, 1_000).with_slow_mirror(1, 4_000);
        assert_eq!(f.inflate_permille(1), 4_000);
        assert_eq!(f.inflate_permille(0), 0);
        assert_eq!(f.inflate_latency(1, 1_000), 5_000);
        assert_eq!(f.inflate_latency(0, 1_000), 1_000);
    }

    #[test]
    fn corruption_is_seeded_and_deterministic() {
        let f = ServeFaultConfig::builder().with_seed(7).with_sync_corrupt_permille(500);
        let hits: Vec<bool> = (0..100).map(|r| f.corrupt_sync(1, r, 0, 1)).collect();
        let replay: Vec<bool> = (0..100).map(|r| f.corrupt_sync(1, r, 0, 1)).collect();
        assert_eq!(hits, replay, "pure function of (seed, transfer)");
        let n = hits.iter().filter(|&&h| h).count();
        assert!(n > 20 && n < 80, "roughly half at 500 permille, got {n}");
        let other = ServeFaultConfig::builder().with_seed(8).with_sync_corrupt_permille(500);
        assert_ne!(hits, (0..100).map(|r| other.corrupt_sync(1, r, 0, 1)).collect::<Vec<_>>());
        assert!(!ServeFaultConfig::lossless().corrupt_sync(1, 1, 1, 1), "all-off preset");
        assert!(f.corrupt_position(1, 3, 0, 1, 64) < 64);
    }

    #[test]
    fn serde_defaults_round_trip() {
        let parsed: ServeFaultConfig = serde_json::from_str("{}").expect("all fields default");
        assert_eq!(parsed, ServeFaultConfig::lossless());
        let chaos = ServeFaultConfig::chaos(11, 4);
        let json = serde_json::to_string(&chaos).expect("serializes");
        let back: ServeFaultConfig = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, chaos);
    }
}
