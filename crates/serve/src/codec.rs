//! The artifact delta codec: chunked item sets ([`AddrSet`]) as compact,
//! checksummed byte streams.
//!
//! The real hitlist service ships multi-megabyte daily text files; a
//! consumer who already holds yesterday's list only needs the day's
//! churn, which is orders of magnitude smaller. This module encodes a
//! set of 128-bit items (addresses, or packed prefixes) two ways:
//!
//! * **full** — the whole set, varint delta-of-delta encoded: the first
//!   item absolute, the first gap plain, every later gap as a zigzag
//!   second difference. Structured address sets (regular strides inside
//!   a prefix) collapse to near one byte per item.
//! * **delta** — the removed and added items versus a base set, plus the
//!   FNV-1a digests of both the base and the result, so a consumer can
//!   detect applying a delta to the wrong base *before* trusting the
//!   output.
//!
//! Every stream ends in an FNV-1a checksum over the preceding bytes.
//! Decoding is panic-free: corrupted, truncated or internally
//! inconsistent input yields a [`CodecError`], never UB or an abort.
//!
//! Since the `AddrSet` redesign, encoders stream straight off the chunked
//! set's ascending iterator (the byte streams are unchanged — they were
//! always defined over the sorted item sequence, which is exactly the
//! order an `AddrSet` iterates in), and decoders hand back an `AddrSet`.

use std::fmt;

use sixdust_addr::AddrSet;

/// Magic prefix of a full-snapshot stream (`SDF1`).
pub const FULL_MAGIC: [u8; 4] = *b"SDF1";
/// Magic prefix of a delta stream (`SDD1`).
pub const DELTA_MAGIC: [u8; 4] = *b"SDD1";

/// Why a stream failed to decode or apply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The stream ended before the structure it promised.
    Truncated,
    /// The stream does not start with the expected magic bytes.
    BadMagic,
    /// The trailing checksum does not match the stream contents.
    ChecksumMismatch,
    /// A varint ran past the width of `u128`.
    BadVarint,
    /// The item count claims more items than the stream could hold.
    LengthOverflow,
    /// Decoded items were not strictly increasing.
    NotSorted,
    /// Bytes remained after the advertised structure was consumed.
    TrailingBytes,
    /// A delta was applied to a base set with the wrong digest.
    BaseMismatch {
        /// Digest the delta was encoded against.
        expected: u64,
        /// Digest of the base actually supplied.
        actual: u64,
    },
    /// The delta applied cleanly but the result digest disagrees.
    ResultMismatch {
        /// Digest the delta promised for the result.
        expected: u64,
        /// Digest of the set actually produced.
        actual: u64,
    },
    /// A delta removed an item the base does not hold, or added one it
    /// already holds.
    InconsistentDelta,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "stream truncated"),
            CodecError::BadMagic => write!(f, "bad magic bytes"),
            CodecError::ChecksumMismatch => write!(f, "checksum mismatch"),
            CodecError::BadVarint => write!(f, "varint exceeds 128 bits"),
            CodecError::LengthOverflow => write!(f, "item count exceeds stream size"),
            CodecError::NotSorted => write!(f, "items not strictly increasing"),
            CodecError::TrailingBytes => write!(f, "trailing bytes after structure"),
            CodecError::BaseMismatch { expected, actual } => {
                write!(f, "delta base digest {expected:#x} != supplied base {actual:#x}")
            }
            CodecError::ResultMismatch { expected, actual } => {
                write!(f, "delta result digest {expected:#x} != reconstructed {actual:#x}")
            }
            CodecError::InconsistentDelta => write!(f, "delta inconsistent with base set"),
        }
    }
}

impl std::error::Error for CodecError {}

/// FNV-1a 64-bit digest over the little-endian bytes of each item — the
/// stable per-artifact content digest. Streaming: consumes any item
/// iterator, and an `&AddrSet` directly; items must arrive in ascending
/// deduplicated order (the order every [`AddrSet`] iterates in) so the
/// digest depends on content alone.
///
/// Matches [`sixdust_hitlist::publish::content_digest`] byte for byte so
/// serve-layer ETags key off the same value `manifest.json` records.
pub fn content_digest<I: IntoIterator<Item = u128>>(items: I) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for item in items {
        for byte in item.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
    }
    hash
}

/// FNV-1a 64-bit over raw bytes (stream checksums).
fn fnv_bytes(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in bytes {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

fn push_varint(out: &mut Vec<u8>, mut v: u128) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn read_varint(bytes: &[u8], pos: &mut usize) -> Result<u128, CodecError> {
    let mut value: u128 = 0;
    let mut shift: u32 = 0;
    loop {
        let byte = *bytes.get(*pos).ok_or(CodecError::Truncated)?;
        *pos += 1;
        if shift >= 128 {
            return Err(CodecError::BadVarint);
        }
        let part = u128::from(byte & 0x7f);
        // The final 7-bit group may not carry bits past position 127.
        if shift > 121 && (part >> (128 - shift)) != 0 {
            return Err(CodecError::BadVarint);
        }
        value |= part << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

/// Zigzag-maps a wrapped second difference into an unsigned varint-friendly
/// value. Works over the full `u128` ring: `wrapping_sub` then zigzag is a
/// bijection, so even pathological gap sequences round-trip exactly.
fn zigzag(d: i128) -> u128 {
    ((d << 1) ^ (d >> 127)) as u128
}

fn unzigzag(z: u128) -> i128 {
    ((z >> 1) as i128) ^ -((z & 1) as i128)
}

/// Appends `count` + the delta-of-delta item stream for an ascending,
/// deduplicated item iterator (exact-size so the count leads the stream
/// without a second pass — streaming straight off an [`AddrSet`] chunk
/// cursor never materializes the flat item vector).
fn push_items<I: ExactSizeIterator<Item = u128>>(out: &mut Vec<u8>, items: I) {
    push_varint(out, items.len() as u128);
    let mut prev_item: u128 = 0;
    let mut prev_gap: u128 = 0;
    for (i, item) in items.enumerate() {
        debug_assert!(i == 0 || item > prev_item, "items must be strictly increasing");
        match i {
            0 => push_varint(out, item),
            1 => {
                prev_gap = item - prev_item;
                push_varint(out, prev_gap);
            }
            _ => {
                let gap = item - prev_item;
                push_varint(out, zigzag(gap.wrapping_sub(prev_gap) as i128));
                prev_gap = gap;
            }
        }
        prev_item = item;
    }
}

/// Reads one item stream written by [`push_items`].
fn read_items(bytes: &[u8], pos: &mut usize) -> Result<Vec<u128>, CodecError> {
    let count = read_varint(bytes, pos)?;
    // Each encoded item costs at least one byte, so a count beyond the
    // stream length is corrupt — reject before allocating.
    if count > bytes.len() as u128 {
        return Err(CodecError::LengthOverflow);
    }
    let count = count as usize;
    let mut items = Vec::with_capacity(count);
    let mut prev_item: u128 = 0;
    let mut prev_gap: u128 = 0;
    for i in 0..count {
        let item = match i {
            0 => read_varint(bytes, pos)?,
            _ => {
                let gap = if i == 1 {
                    read_varint(bytes, pos)?
                } else {
                    prev_gap.wrapping_add(unzigzag(read_varint(bytes, pos)?) as u128)
                };
                if gap == 0 {
                    return Err(CodecError::NotSorted);
                }
                prev_gap = gap;
                prev_item.checked_add(gap).ok_or(CodecError::NotSorted)?
            }
        };
        items.push(item);
        prev_item = item;
    }
    Ok(items)
}

/// Checks the trailing 8-byte checksum and returns the payload in front
/// of it.
fn checked_payload(bytes: &[u8]) -> Result<&[u8], CodecError> {
    if bytes.len() < 12 {
        return Err(CodecError::Truncated);
    }
    let (payload, tail) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(tail.try_into().expect("split_at leaves 8 bytes"));
    if fnv_bytes(payload) != stored {
        return Err(CodecError::ChecksumMismatch);
    }
    Ok(payload)
}

fn push_checksum(out: &mut Vec<u8>) {
    let sum = fnv_bytes(out);
    out.extend_from_slice(&sum.to_le_bytes());
}

/// Encodes a full snapshot of an item set, streaming chunk by chunk off
/// the set's ascending iterator. Accepts any exact-size ascending item
/// iterator — pass an `&AddrSet` directly.
pub fn encode_full<I>(items: I) -> Vec<u8>
where
    I: IntoIterator<Item = u128>,
    I::IntoIter: ExactSizeIterator,
{
    let items = items.into_iter();
    let mut out = Vec::with_capacity(16 + items.len() * 2);
    out.extend_from_slice(&FULL_MAGIC);
    push_items(&mut out, items);
    push_checksum(&mut out);
    out
}

/// Decodes a full snapshot, verifying magic, checksum, sortedness and
/// exact consumption. Never panics on corrupt input.
pub fn decode_full(bytes: &[u8]) -> Result<AddrSet, CodecError> {
    let payload = checked_payload(bytes)?;
    if payload[..4] != FULL_MAGIC {
        return Err(CodecError::BadMagic);
    }
    let mut pos = 4;
    let items = read_items(payload, &mut pos)?;
    if pos != payload.len() {
        return Err(CodecError::TrailingBytes);
    }
    // `read_items` enforces strictly increasing order, so the canonical
    // fast path applies.
    Ok(AddrSet::from_sorted(items))
}

/// Decodes a full snapshot *and* pins it to an expected content digest
/// — the checksum-first validation an edge mirror runs on a sync
/// transfer before adopting it. The stream checksum catches in-flight
/// corruption; the digest cross-check additionally catches a
/// well-formed-but-wrong body (e.g. the origin swapped generations
/// mid-transfer).
pub fn verify_full(bytes: &[u8], expected_digest: u64) -> Result<AddrSet, CodecError> {
    let items = decode_full(bytes)?;
    let actual = content_digest(&items);
    if actual != expected_digest {
        return Err(CodecError::ResultMismatch { expected: expected_digest, actual });
    }
    Ok(items)
}

/// Encodes the delta from set `prev` to set `next`: the removed and
/// added items, framed by the digests of both endpoints. One merge walk
/// over both sets' streaming iterators.
pub fn encode_delta(prev: &AddrSet, next: &AddrSet) -> Vec<u8> {
    let mut removed = Vec::new();
    let mut added = Vec::new();
    let mut i = prev.iter().peekable();
    let mut j = next.iter().peekable();
    loop {
        match (i.peek().copied(), j.peek().copied()) {
            (Some(p), Some(n)) if p == n => {
                i.next();
                j.next();
            }
            (Some(p), Some(n)) if p < n => {
                removed.push(p);
                i.next();
            }
            (Some(_), Some(n)) => {
                added.push(n);
                j.next();
            }
            (Some(p), None) => {
                removed.push(p);
                i.next();
            }
            (None, Some(n)) => {
                added.push(n);
                j.next();
            }
            (None, None) => break,
        }
    }
    let mut out = Vec::with_capacity(32 + (removed.len() + added.len()) * 2);
    out.extend_from_slice(&DELTA_MAGIC);
    out.extend_from_slice(&content_digest(prev).to_le_bytes());
    out.extend_from_slice(&content_digest(next).to_le_bytes());
    push_items(&mut out, removed.iter().copied());
    push_items(&mut out, added.iter().copied());
    push_checksum(&mut out);
    out
}

/// The `(base, result)` digests a delta stream was encoded against,
/// without applying it — the serve layer's ETag fast path.
pub fn delta_digests(bytes: &[u8]) -> Result<(u64, u64), CodecError> {
    let payload = checked_payload(bytes)?;
    if payload[..4] != DELTA_MAGIC {
        return Err(CodecError::BadMagic);
    }
    if payload.len() < 20 {
        return Err(CodecError::Truncated);
    }
    let base = u64::from_le_bytes(payload[4..12].try_into().expect("8 bytes"));
    let result = u64::from_le_bytes(payload[12..20].try_into().expect("8 bytes"));
    Ok((base, result))
}

/// Applies a delta stream to the base set `prev`, returning the
/// reconstructed result set.
///
/// Three layers of validation guard the reconstruction: the stream
/// checksum, the base digest (wrong-base application fails fast), and the
/// result digest (a forged-but-checksummed delta still cannot produce a
/// silently wrong set).
pub fn apply_delta(prev: &AddrSet, bytes: &[u8]) -> Result<AddrSet, CodecError> {
    let payload = checked_payload(bytes)?;
    if payload[..4] != DELTA_MAGIC {
        return Err(CodecError::BadMagic);
    }
    if payload.len() < 20 {
        return Err(CodecError::Truncated);
    }
    let base_digest = u64::from_le_bytes(payload[4..12].try_into().expect("8 bytes"));
    let result_digest = u64::from_le_bytes(payload[12..20].try_into().expect("8 bytes"));
    let mut pos = 20;
    let removed = read_items(payload, &mut pos)?;
    let added = read_items(payload, &mut pos)?;
    if pos != payload.len() {
        return Err(CodecError::TrailingBytes);
    }
    let actual_base = content_digest(prev);
    if actual_base != base_digest {
        return Err(CodecError::BaseMismatch { expected: base_digest, actual: actual_base });
    }

    // Merge walk over the base set's streaming iterator: drop removed
    // items (which must exist), keep the rest, interleave added items
    // (which must be new).
    let mut next = Vec::with_capacity(prev.len() + added.len() - removed.len().min(prev.len()));
    let mut rem = removed.iter().copied().peekable();
    let mut add = added.iter().copied().peekable();
    for p in prev.iter() {
        while add.peek().is_some_and(|&a| a < p) {
            next.push(add.next().expect("peeked"));
        }
        if add.peek() == Some(&p) {
            return Err(CodecError::InconsistentDelta);
        }
        if rem.peek() == Some(&p) {
            rem.next();
        } else {
            next.push(p);
        }
    }
    next.extend(add);
    if rem.next().is_some() {
        return Err(CodecError::InconsistentDelta);
    }
    let actual = content_digest(next.iter().copied());
    if actual != result_digest {
        return Err(CodecError::ResultMismatch { expected: result_digest, actual });
    }
    Ok(AddrSet::from_sorted(next))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(v: &[u128]) -> AddrSet {
        AddrSet::from_unsorted(v.to_vec())
    }

    #[test]
    fn full_round_trips() {
        for items in [
            vec![],
            vec![0u128],
            vec![u128::MAX],
            vec![1, 2, 3, 1000, u128::MAX - 1, u128::MAX],
            (0..500u128).map(|i| i * 7 + 3).collect(),
        ] {
            let items = set(&items);
            let bytes = encode_full(&items);
            assert_eq!(decode_full(&bytes).expect("round trip"), items);
        }
    }

    #[test]
    fn verify_full_pins_the_digest() {
        let items = set(&[1, 5, 9, 1000]);
        let bytes = encode_full(&items);
        let digest = content_digest(&items);
        assert_eq!(verify_full(&bytes, digest).expect("clean transfer"), items);
        // Wrong expectation: a well-formed body for a different artifact.
        assert!(matches!(verify_full(&bytes, digest ^ 1), Err(CodecError::ResultMismatch { .. })));
        // In-flight corruption: the checksum layer fires first.
        let mut torn = bytes.clone();
        let mid = torn.len() / 2;
        torn[mid] ^= 0x40;
        assert!(verify_full(&torn, digest).is_err());
    }

    #[test]
    fn streams_are_byte_identical_across_chunk_representations() {
        // A dense run (bitmap chunk), a sparse spread (sorted chunks) and
        // a mix: the encoder streaming off the chunk cursors must produce
        // the same bytes as one walking the flat sorted vector.
        let mut items: Vec<u128> = (0..5_000u128).map(|i| (0x2001u128 << 96) + i).collect();
        items.extend((0..100u128).map(|i| i << 80));
        let chunked = set(&items);
        assert!(chunked.bitmap_chunk_count() > 0, "test needs a bitmap chunk");
        let flat = chunked.to_vec();
        assert_eq!(encode_full(&chunked), encode_full(flat.iter().copied()));
        assert_eq!(content_digest(&chunked), content_digest(flat.into_iter()));
    }

    #[test]
    fn regular_strides_compress_to_near_one_byte_per_item() {
        // A structured /64 sweep: constant gap, so every second
        // difference is zero — one byte each after the first two items.
        let items: Vec<u128> = (0..10_000u128).map(|i| (0x2001 << 112) + i * 256).collect();
        let count = items.len();
        let bytes = encode_full(AddrSet::from_sorted(items).iter());
        assert!(
            bytes.len() < count + 64,
            "dod encoding should collapse strides: {} bytes for {count} items",
            bytes.len(),
        );
    }

    #[test]
    fn delta_round_trips_including_edge_shapes() {
        let cases: Vec<(Vec<u128>, Vec<u128>)> = vec![
            (vec![], vec![]),
            (vec![], vec![5]),
            (vec![5], vec![]),
            (vec![1, 2, 3], vec![1, 2, 3]),
            (vec![1, 2, 3], vec![2]), // removal-only (plus keeps)
            (vec![1, 2, 3], vec![1, 2, 3, 4, 9]), // addition-only
            (vec![10, 20, 30, 40], vec![5, 20, 35, 40, 50]),
        ];
        for (prev, next) in cases {
            let (prev, next) = (set(&prev), set(&next));
            let delta = encode_delta(&prev, &next);
            assert_eq!(apply_delta(&prev, &delta).expect("apply"), next, "{prev:?} -> {next:?}");
            let (b, r) = delta_digests(&delta).expect("digests");
            assert_eq!(b, content_digest(&prev));
            assert_eq!(r, content_digest(&next));
        }
    }

    #[test]
    fn wrong_base_is_rejected_before_reconstruction() {
        let prev = set(&[1, 2, 3]);
        let next = set(&[1, 2, 3, 4]);
        let delta = encode_delta(&prev, &next);
        let err = apply_delta(&set(&[1, 2]), &delta).expect_err("wrong base");
        assert!(matches!(err, CodecError::BaseMismatch { .. }), "{err:?}");
    }

    #[test]
    fn corrupt_streams_error_instead_of_panicking() {
        let items = set(&[7, 9, 100, 2000]);
        let good = encode_full(&items);
        assert_eq!(decode_full(&[]).expect_err("empty"), CodecError::Truncated);
        assert_eq!(decode_full(&good[..good.len() - 1]).expect_err("truncated"), {
            CodecError::ChecksumMismatch
        });
        let mut bad_magic = good.clone();
        bad_magic[0] ^= 0xff;
        assert!(decode_full(&bad_magic).is_err());
        for i in 0..good.len() {
            let mut flipped = good.clone();
            flipped[i] ^= 0x55;
            assert!(decode_full(&flipped).is_err(), "flip at {i} must not decode");
        }
    }

    #[test]
    fn oversized_count_is_rejected_without_allocating() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&FULL_MAGIC);
        push_varint(&mut bytes, u128::from(u64::MAX)); // absurd count
        push_checksum(&mut bytes);
        assert_eq!(decode_full(&bytes).expect_err("huge count"), CodecError::LengthOverflow);
    }

    #[test]
    fn varint_overflow_is_rejected() {
        // 19 continuation bytes push past 128 bits.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&FULL_MAGIC);
        bytes.push(1); // count = 1
        bytes.extend_from_slice(&[0xff; 19]);
        bytes.push(0x7f);
        push_checksum(&mut bytes);
        assert_eq!(decode_full(&bytes).expect_err("overflow"), CodecError::BadVarint);
    }

    #[test]
    fn digest_is_content_stable() {
        let a = set(&[3, 1, 2]);
        let b = set(&[2, 3, 1]);
        assert_eq!(content_digest(&a), content_digest(&b));
        assert_ne!(content_digest(&a), content_digest([1u128, 2]));
        // Known FNV-1a property: empty input is the offset basis.
        assert_eq!(content_digest(std::iter::empty::<u128>()), 0xcbf2_9ce4_8422_2325);
    }
}
