//! The event-loop front end: virtual-time reactor over a [`Frontend`].
//!
//! The synchronous serve path couples one request to one caller "thread"
//! — `Frontend::handle` runs admit → cache/render → transfer to
//! completion before the caller may submit the next arrival. This module
//! decouples them: [`EventLoop::submit`] is *non-blocking* admission
//! (the ledger decision is made at arrival time, exactly as the
//! synchronous path does), and the request then lives as a small state
//! machine whose phase transitions — render done, transfer done /
//! retire — are events on a pending-completion heap. Concurrency is
//! bounded by the loop's in-flight set, not by the caller: a million
//! virtual clients can have thousands of transfers in flight while the
//! driver keeps submitting.
//!
//! Determinism contract: submissions must arrive in non-decreasing
//! virtual time, and the loop calls the *same* `Frontend::handle` at the
//! same instants the synchronous path would, so the
//! [`DayReport`](crate::DayReport) ledger is byte-identical between the
//! two at matched configuration (pinned by tests). What the reactor adds
//! on top is completion *delivery* at retire time (the fleet applies
//! client-held state when the transfer finishes, not when it starts) and
//! the `serve.loop.*` phase telemetry.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use sixdust_telemetry::{Counter, Gauge, Registry};

use crate::server::{Frontend, Outcome, Request};
use crate::store::ArtifactKind;

/// A retired request, delivered by [`EventLoop::poll`] once its
/// transfer has completed on the virtual timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Completion {
    /// The submission id (the fleet's request index).
    pub id: u64,
    /// The requesting client.
    pub client: u64,
    /// The artifact the request asked for.
    pub kind: ArtifactKind,
    /// Retire time: arrival plus the served latency (arrival itself for
    /// shed and unavailable outcomes, which never occupy the loop).
    pub at_us: u64,
    /// How the front end answered.
    pub outcome: Outcome,
}

/// What a pending heap event does when its time comes.
#[derive(Debug)]
enum Phase {
    /// A cache-miss body finished rendering (the transfer continues).
    RenderDone,
    /// The request retires: deliver its completion and free its slot.
    Retire(Completion),
}

/// One scheduled phase transition. Ordered by `(at_us, seq)` so events
/// at the same instant fire in submission order — the same total order
/// the synchronous comparator path uses.
#[derive(Debug)]
struct Event {
    at_us: u64,
    seq: u64,
    phase: Phase,
}

impl PartialEq for Event {
    fn eq(&self, other: &Event) -> bool {
        (self.at_us, self.seq) == (other.at_us, other.seq)
    }
}

impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Event) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Event) -> std::cmp::Ordering {
        (self.at_us, self.seq).cmp(&(other.at_us, other.seq))
    }
}

/// The loop's own running counters — phase traffic and occupancy,
/// independent of the optional registry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoopStats {
    /// Requests submitted.
    pub arrivals: u64,
    /// Render phases completed (cache-miss bodies).
    pub renders: u64,
    /// Body transfers completed.
    pub transfers: u64,
    /// Requests retired (every submission retires exactly once).
    pub retired: u64,
    /// Requests currently between admission and retire.
    pub inflight: u64,
    /// High-water mark of `inflight` across the run.
    pub inflight_peak: u64,
}

/// Telemetry handles, resolved once at attachment (hot-path rule).
struct LoopMeters {
    arrivals: Counter,
    renders: Counter,
    transfers: Counter,
    retired: Counter,
    inflight: Gauge,
    inflight_peak: Gauge,
}

impl LoopMeters {
    fn resolve(registry: &Registry) -> LoopMeters {
        LoopMeters {
            arrivals: registry.counter("serve.loop.arrivals"),
            renders: registry.counter("serve.loop.renders"),
            transfers: registry.counter("serve.loop.transfers"),
            retired: registry.counter("serve.loop.retired"),
            inflight: registry.gauge("serve.loop.inflight"),
            inflight_peak: registry.gauge("serve.loop.inflight_peak"),
        }
    }
}

/// A virtual-time event loop over a borrowed [`Frontend`].
pub struct EventLoop<'a> {
    frontend: &'a mut Frontend,
    heap: BinaryHeap<Reverse<Event>>,
    /// Completions whose retire time has passed, awaiting a `poll`.
    ready: Vec<Completion>,
    stats: LoopStats,
    meters: Option<LoopMeters>,
    seq: u64,
    clock: u64,
}

impl std::fmt::Debug for EventLoop<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventLoop")
            .field("clock", &self.clock)
            .field("pending", &self.heap.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl<'a> EventLoop<'a> {
    /// Wraps a front end in a reactor. The front end keeps its totals,
    /// cache, buckets and latency histogram — the loop only schedules.
    pub fn new(frontend: &'a mut Frontend) -> EventLoop<'a> {
        EventLoop {
            frontend,
            heap: BinaryHeap::new(),
            ready: Vec::new(),
            stats: LoopStats::default(),
            meters: None,
            seq: 0,
            clock: 0,
        }
    }

    /// Attaches a metrics registry (`serve.loop.{arrivals,renders,`
    /// `transfers,retired,inflight,inflight_peak}`).
    pub fn with_telemetry(mut self, registry: &Registry) -> EventLoop<'a> {
        self.meters = Some(LoopMeters::resolve(registry));
        self
    }

    /// The wrapped front end (totals, latency snapshot).
    pub fn frontend(&self) -> &Frontend {
        self.frontend
    }

    /// The loop's phase counters and occupancy so far.
    pub fn stats(&self) -> LoopStats {
        self.stats
    }

    fn push(&mut self, at_us: u64, phase: Phase) {
        self.seq += 1;
        self.heap.push(Reverse(Event { at_us, seq: self.seq, phase }));
    }

    fn set_inflight(&mut self, delta: i64) {
        self.stats.inflight = self.stats.inflight.checked_add_signed(delta).unwrap_or(0);
        self.stats.inflight_peak = self.stats.inflight_peak.max(self.stats.inflight);
        if let Some(m) = &self.meters {
            m.inflight.set(self.stats.inflight as i64);
            m.inflight_peak.set(self.stats.inflight_peak as i64);
        }
    }

    /// Non-blocking admission of one arrival. Every ledger decision
    /// (admit, shed, cache, totals, latency) is made here, at arrival
    /// time, through the same `Frontend::handle` the synchronous path
    /// calls — the loop then schedules the request's remaining phases
    /// and returns immediately. Arrivals must be submitted in
    /// non-decreasing `at_us` order.
    pub fn submit(&mut self, id: u64, request: &Request) {
        debug_assert!(request.at_us >= self.clock, "arrivals must be time-ordered");
        self.advance_to(request.at_us);
        self.clock = request.at_us;
        self.stats.arrivals += 1;
        if let Some(m) = &self.meters {
            m.arrivals.incr();
        }
        let outcome = self.frontend.handle(request);
        let at = request.at_us;
        match &outcome {
            Outcome::Body { cached, latency_us, .. } => {
                let retire = at.saturating_add(*latency_us);
                if !*cached {
                    // Render slot: the body was reserved (and the cache
                    // populated) at admission; the render *phase* ends
                    // after base + render latency, mid-transfer.
                    let config = self.frontend.config();
                    let done = at
                        .saturating_add(config.base_latency_us)
                        .saturating_add(config.render_latency_us);
                    self.push(done.min(retire), Phase::RenderDone);
                }
                self.set_inflight(1);
                let completion = Completion {
                    id,
                    client: request.client,
                    kind: request.kind,
                    at_us: retire,
                    outcome,
                };
                self.push(retire, Phase::Retire(completion));
            }
            Outcome::NotModified { latency_us, .. } => {
                let retire = at.saturating_add(*latency_us);
                self.set_inflight(1);
                let completion = Completion {
                    id,
                    client: request.client,
                    kind: request.kind,
                    at_us: retire,
                    outcome,
                };
                self.push(retire, Phase::Retire(completion));
            }
            Outcome::ShedClient | Outcome::ShedGlobal | Outcome::Unavailable => {
                // Rejected at admission: retires on the spot, occupying
                // nothing — delivered on the next poll so the driver
                // still sees every submission resolve exactly once.
                self.stats.retired += 1;
                if let Some(m) = &self.meters {
                    m.retired.incr();
                }
                self.ready.push(Completion {
                    id,
                    client: request.client,
                    kind: request.kind,
                    at_us: at,
                    outcome,
                });
            }
        }
    }

    fn advance_to(&mut self, until_us: u64) {
        while self.heap.peek().is_some_and(|Reverse(e)| e.at_us <= until_us) {
            let Reverse(event) = self.heap.pop().expect("peeked");
            match event.phase {
                Phase::RenderDone => {
                    self.stats.renders += 1;
                    if let Some(m) = &self.meters {
                        m.renders.incr();
                    }
                }
                Phase::Retire(completion) => {
                    self.stats.retired += 1;
                    if matches!(completion.outcome, Outcome::Body { .. }) {
                        self.stats.transfers += 1;
                        if let Some(m) = &self.meters {
                            m.transfers.incr();
                        }
                    }
                    if let Some(m) = &self.meters {
                        m.retired.incr();
                    }
                    self.set_inflight(-1);
                    self.ready.push(completion);
                }
            }
        }
    }

    /// Fires every phase event due at or before `until_us` and returns
    /// the requests that retired, in `(retire time, submission order)`
    /// order. The fleet driver calls this before each submission so
    /// client-held state advances exactly when transfers complete.
    pub fn poll(&mut self, until_us: u64) -> Vec<Completion> {
        self.advance_to(until_us);
        std::mem::take(&mut self.ready)
    }

    /// Drains the loop: fires every remaining event and returns the
    /// final completions. The loop is reusable afterwards.
    pub fn finish(&mut self) -> Vec<Completion> {
        self.poll(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{FetchKind, FrontendConfig};
    use crate::store::{SnapshotStore, StoreConfig};
    use std::sync::Arc;

    fn served_store() -> Arc<SnapshotStore> {
        let store = SnapshotStore::new(StoreConfig::default());
        let items: sixdust_addr::AddrSet = (0..2000u128).map(|i| i * 31).collect();
        store.publish_round(1, "d1", vec![(ArtifactKind::Responsive, items)]);
        Arc::new(store)
    }

    fn request(client: u64, at_us: u64) -> Request {
        Request {
            client,
            kind: ArtifactKind::Responsive,
            fetch: FetchKind::Full,
            if_none_match: None,
            at_us,
        }
    }

    #[test]
    fn phases_fire_in_order_and_completions_arrive_at_retire_time() {
        let mut fe = Frontend::new(FrontendConfig::default(), served_store());
        let mut el = EventLoop::new(&mut fe);
        el.submit(0, &request(1, 0));
        assert!(el.poll(0).is_empty(), "the transfer is still in flight at t=0");
        assert_eq!(el.stats().inflight, 1);
        let done = el.finish();
        assert_eq!(done.len(), 1);
        let Outcome::Body { latency_us, cached: false, .. } = done[0].outcome else {
            panic!("first fetch renders a body");
        };
        assert_eq!(done[0].at_us, latency_us, "retire = arrival + served latency");
        let s = el.stats();
        assert_eq!((s.arrivals, s.renders, s.transfers, s.retired), (1, 1, 1, 1));
        assert_eq!(s.inflight, 0);
        assert_eq!(s.inflight_peak, 1);
    }

    #[test]
    fn sheds_retire_immediately_without_occupancy() {
        let config = FrontendConfig::builder().with_client_bucket(1, 0);
        let mut fe = Frontend::new(config, served_store());
        let mut el = EventLoop::new(&mut fe);
        el.submit(0, &request(7, 0));
        el.submit(1, &request(7, 1));
        let now = el.poll(1);
        assert_eq!(now.len(), 1, "the shed resolves at once; the body is still in flight");
        assert!(matches!(now[0].outcome, Outcome::ShedClient));
        assert_eq!(el.stats().inflight, 1, "a shed never occupies a slot");
        assert_eq!(el.finish().len(), 1);
        assert_eq!(el.stats().transfers, 1);
        assert_eq!(el.stats().retired, 2, "every submission retires exactly once");
    }

    #[test]
    fn loop_telemetry_reports_phase_counters() {
        let reg = Registry::new();
        let mut fe = Frontend::new(FrontendConfig::default(), served_store());
        let mut el = EventLoop::new(&mut fe).with_telemetry(&reg);
        for (i, client) in (0..4u64).enumerate() {
            el.submit(i as u64, &request(client, i as u64 * 10));
        }
        el.finish();
        let snap = reg.snapshot();
        assert_eq!(snap.counter("serve.loop.arrivals"), Some(4));
        assert_eq!(snap.counter("serve.loop.retired"), Some(4));
        assert_eq!(snap.counter("serve.loop.renders"), Some(1), "one miss, then cache hits");
        assert_eq!(snap.counter("serve.loop.transfers"), Some(4));
        assert!(snap.gauge("serve.loop.inflight_peak").unwrap_or(0) >= 1);
    }
}
