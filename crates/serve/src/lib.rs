//! `sixdust-serve`: the hitlist distribution subsystem.
//!
//! A paper-scale hitlist is only useful if researchers can actually
//! fetch it, so this crate models the publishing side that sits between
//! [`HitlistService`](sixdust_hitlist::HitlistService) rounds and a
//! fleet of registered consumers:
//!
//! * [`store`] — a sharded snapshot store. Addresses are PRF-sharded
//!   across N shards; a publishing round builds a fresh generation off
//!   to the side and installs it with one atomic pointer swap, so
//!   concurrent readers never block and never observe a torn mix of
//!   rounds. Unchanged artifacts and shards are structurally shared
//!   (`Arc` reuse) between generations.
//! * [`codec`] — full-snapshot and delta wire formats for sorted
//!   `u128` address sets: varint delta-of-delta encoding, FNV-1a
//!   content digests, and checksummed frames whose decoder rejects
//!   corruption instead of panicking.
//! * [`server`] — what one front end does to a request stream: ETag
//!   conditional fetches (304s), an LRU of encoded bodies, per-client
//!   token buckets plus a global concurrency cap, and explicit
//!   load-shedding accounting. Emits per-artifact-kind RED metrics
//!   (`serve.kind.<stem>.{requests,errors,latency_us}`), virtual-time
//!   latency in microseconds, and delta/304 byte-savings counters;
//!   shed decisions feed an attached
//!   [`FlightRecorder`](sixdust_telemetry::FlightRecorder).
//! * [`fleet`] — a seeded, Zipf-popular simulated consumer fleet that
//!   replays a deterministic high-QPS day and emits a [`DayReport`].
//!   Load comes in two shapes: the classic uniform request spread and
//!   session-based generation ([`SessionShape`]) — heavy-tailed
//!   per-client request counts, think time, and flash-crowd spikes —
//!   which scales a day past a million virtual clients.
//!   [`run_chaos_day`] drives the same fleet through the resilient
//!   client path (affinity, failover, retries with seeded backoff,
//!   hedging, per-mirror circuit breakers).
//! * [`reactor`] — the event-loop front end: requests run as
//!   per-request state machines (admit → render → transfer → retire)
//!   on a virtual-time completion heap, so in-flight concurrency is
//!   bounded by the loop, not the caller's thread. Its ledger is pinned
//!   byte-identical to the synchronous path
//!   ([`simulate_day_sync`](fleet::simulate_day_sync)).
//! * [`mirror`] — the fault-tolerant distribution tier: N edge mirrors
//!   syncing generations from the origin store over the delta codec
//!   with checksum-first torn-sync rejection, serving stale-but-counted
//!   generations while the origin is blacked out.
//! * [`faults`] — the seeded failure model the tier runs under: mirror
//!   outage windows, slow-mirror latency inflation, origin publish
//!   blackouts and sync corruption.
//!
//! All request handling runs on virtual time, so a 100k-request day
//! replays in milliseconds and bit-identically for a fixed seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod faults;
pub mod fleet;
pub mod mirror;
pub mod reactor;
pub mod server;
pub mod store;

pub use codec::{
    apply_delta, content_digest, decode_full, encode_delta, encode_full, verify_full, CodecError,
};
pub use faults::ServeFaultConfig;
pub use fleet::{
    run_chaos_day, run_day, run_day_observed, simulate_day, simulate_day_sync, BreakerConfig,
    ChaosDayConfig, ChaosObserver, DayReport, FlashSpike, FleetConfig, FleetConfigError,
    ResilienceTotals, RetryPolicy, SessionShape,
};
pub use mirror::{MirrorTier, MirrorTierConfig, TierTotals, TimedPublish};
pub use reactor::{Completion, EventLoop, LoopStats};
pub use server::{
    FetchKind, Frontend, FrontendConfig, FrontendConfigError, FrontendTotals, Outcome, Request,
};
pub use store::{
    service_artifacts, ArtifactKind, ArtifactVersion, ShardData, SnapshotStore, StoreConfig,
};
