//! The sharded snapshot store: publication-side state of the
//! distribution subsystem.
//!
//! Addresses are hash-sharded across `N` shards. A publishing round
//! builds every changed shard *off to the side* and then swaps one
//! [`Arc`] under a short write lock, so concurrent readers never block
//! on a publication and never observe a torn (half-written) shard:
//! every shard handle a reader clones is a complete, checksummed
//! snapshot from exactly one round. Shards whose content did not change
//! between rounds are structurally shared — their `Arc`s carry over —
//! so a quiet round costs almost nothing to publish.

use std::sync::{Arc, RwLock};

use sixdust_addr::AddrSet;
use sixdust_net::Protocol;
use sixdust_scan::proto_metric_key;
use sixdust_telemetry::Registry;

use crate::codec::{self, CodecError};

/// One artifact kind the service distributes — the files a registered
/// consumer can download.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ArtifactKind {
    /// `responsive-addresses` — the full cleaned responsive list.
    Responsive,
    /// `responsive-<proto>` — the per-protocol slice.
    PerProtocol(Protocol),
    /// `aliased-prefixes` — MAPD labels, packed `network | len` items.
    AliasedPrefixes,
    /// `gfw-filtered` — addresses the paper's filter removed.
    GfwFiltered,
}

impl ArtifactKind {
    /// Every artifact kind, in the serving layer's canonical (and Zipf
    /// popularity rank) order.
    pub const ALL: [ArtifactKind; 8] = [
        ArtifactKind::Responsive,
        ArtifactKind::PerProtocol(Protocol::Icmp),
        ArtifactKind::AliasedPrefixes,
        ArtifactKind::PerProtocol(Protocol::Tcp443),
        ArtifactKind::GfwFiltered,
        ArtifactKind::PerProtocol(Protocol::Udp53),
        ArtifactKind::PerProtocol(Protocol::Tcp80),
        ArtifactKind::PerProtocol(Protocol::Udp443),
    ];

    /// Position in [`ArtifactKind::ALL`].
    pub fn index(self) -> usize {
        ArtifactKind::ALL.iter().position(|k| *k == self).expect("ALL is exhaustive")
    }

    /// Stable file stem, mirroring the publication file names.
    pub fn file_stem(self) -> String {
        match self {
            ArtifactKind::Responsive => "responsive-addresses".to_string(),
            ArtifactKind::PerProtocol(p) => format!("responsive-{}", proto_metric_key(p)),
            ArtifactKind::AliasedPrefixes => "aliased-prefixes".to_string(),
            ArtifactKind::GfwFiltered => "gfw-filtered".to_string(),
        }
    }
}

/// One shard of one artifact version: a consistent, checksummed slice of
/// the item set. Immutable once built; shared by `Arc`.
#[derive(Debug)]
pub struct ShardData {
    round: u64,
    digest: u64,
    items: AddrSet,
    encoded: Arc<Vec<u8>>,
}

impl ShardData {
    /// The round this shard was built for (unchanged shards keep the
    /// round that last rebuilt them).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Content digest of the shard's items.
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// The shard's item set.
    pub fn items(&self) -> &AddrSet {
        &self.items
    }

    /// The shard body as an encoded full snapshot.
    pub fn encoded(&self) -> &Arc<Vec<u8>> {
        &self.encoded
    }

    /// Decodes the shard body and cross-checks it against the in-memory
    /// items and digest — the torn-read detector used by tests: a shard
    /// observed mid-publication must still verify.
    pub fn verify(&self) -> Result<(), CodecError> {
        let decoded = codec::decode_full(&self.encoded)?;
        if decoded != self.items || codec::content_digest(&decoded) != self.digest {
            return Err(CodecError::ChecksumMismatch);
        }
        Ok(())
    }
}

/// One published version of one artifact: the full item set, its shards,
/// the encoded full body, and the delta from the previous round.
#[derive(Debug)]
pub struct ArtifactVersion {
    kind: ArtifactKind,
    round: u64,
    digest: u64,
    items: Arc<AddrSet>,
    full: Arc<Vec<u8>>,
    delta: Option<Arc<Vec<u8>>>,
    prev_round: Option<u64>,
    shards: Vec<Arc<ShardData>>,
}

impl ArtifactVersion {
    /// The artifact kind.
    pub fn kind(&self) -> ArtifactKind {
        self.kind
    }

    /// The round (simulation day) this version was published for.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Stable content digest — the serving layer's ETag value.
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// The item set.
    pub fn items(&self) -> &Arc<AddrSet> {
        &self.items
    }

    /// The encoded full snapshot body.
    pub fn full_encoded(&self) -> &Arc<Vec<u8>> {
        &self.full
    }

    /// The encoded delta from `prev_round`, when a previous version
    /// existed.
    pub fn delta_encoded(&self) -> Option<&Arc<Vec<u8>>> {
        self.delta.as_ref()
    }

    /// The round the delta applies on top of.
    pub fn prev_round(&self) -> Option<u64> {
        self.prev_round
    }

    /// The shard handles of this version.
    pub fn shards(&self) -> &[Arc<ShardData>] {
        &self.shards
    }
}

/// One atomically-swapped generation: every artifact of one round.
#[derive(Debug)]
struct Generation {
    round: u64,
    date: String,
    artifacts: Vec<Arc<ArtifactVersion>>,
}

/// Store configuration.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Number of hash shards per artifact.
    pub shards: usize,
}

impl Default for StoreConfig {
    fn default() -> StoreConfig {
        StoreConfig { shards: 8 }
    }
}

impl StoreConfig {
    /// Starts from the default configuration.
    pub fn builder() -> StoreConfig {
        StoreConfig::default()
    }

    /// Sets the shard count (clamped to at least 1).
    pub fn with_shards(mut self, shards: usize) -> StoreConfig {
        self.shards = shards.max(1);
        self
    }
}

/// The sharded, atomically-published snapshot store.
#[derive(Debug)]
pub struct SnapshotStore {
    shards: usize,
    current: RwLock<Option<Arc<Generation>>>,
    telemetry: Option<Registry>,
}

/// Stable shard assignment for one item: any pure hash works, as long as
/// it never changes between rounds (structural sharing depends on it).
fn shard_of(item: u128, shards: usize) -> usize {
    (sixdust_addr::prf::prf_u128(0x51A2D, item, 0) % shards as u64) as usize
}

impl SnapshotStore {
    /// Creates an empty store.
    pub fn new(config: StoreConfig) -> SnapshotStore {
        SnapshotStore { shards: config.shards.max(1), current: RwLock::new(None), telemetry: None }
    }

    /// Attaches a metrics registry: publications report
    /// `serve.publish.*` counters and encode timings there.
    pub fn with_telemetry(mut self, registry: Registry) -> SnapshotStore {
        self.telemetry = Some(registry);
        self
    }

    /// Shards per artifact.
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// The current round, if anything has been published.
    pub fn current_round(&self) -> Option<u64> {
        self.current.read().expect("store lock").as_ref().map(|g| g.round)
    }

    /// ISO date of the current publication.
    pub fn current_date(&self) -> Option<String> {
        self.current.read().expect("store lock").as_ref().map(|g| g.date.clone())
    }

    /// The current version of one artifact. The returned handle stays
    /// valid (and immutable) across later publications.
    pub fn artifact(&self, kind: ArtifactKind) -> Option<Arc<ArtifactVersion>> {
        let guard = self.current.read().expect("store lock");
        guard.as_ref().map(|g| g.artifacts[kind.index()].clone())
    }

    /// One shard of one artifact's current version — what a concurrent
    /// reader grabs while a publication may be in flight.
    pub fn shard(&self, kind: ArtifactKind, index: usize) -> Option<Arc<ShardData>> {
        self.artifact(kind).and_then(|v| v.shards().get(index).cloned())
    }

    /// Publishes one round: an item set per artifact kind (missing kinds
    /// publish as empty sets). [`AddrSet`]s are deduplicated and
    /// canonically ordered by construction, so no normalization happens
    /// here. Readers keep serving the previous generation until the
    /// single atomic swap at the end.
    pub fn publish_round(&self, round: u64, date: &str, artifacts: Vec<(ArtifactKind, AddrSet)>) {
        let started = std::time::Instant::now();
        let prev = self.current.read().expect("store lock").clone();
        let mut reused = 0u64;
        let mut rebuilt = 0u64;
        let mut bytes_full = 0u64;
        let mut bytes_delta = 0u64;

        let mut versions: Vec<Arc<ArtifactVersion>> = Vec::with_capacity(ArtifactKind::ALL.len());
        for kind in ArtifactKind::ALL {
            let items: AddrSet = artifacts
                .iter()
                .find(|(k, _)| *k == kind)
                .map(|(_, v)| v.clone())
                .unwrap_or_default();
            let digest = codec::content_digest(&items);
            let prev_version = prev.as_ref().map(|g| &g.artifacts[kind.index()]);

            // Unchanged artifact: carry the whole version over, only
            // bumping nothing — readers keep the same Arcs.
            if let Some(pv) = prev_version {
                if pv.digest == digest && *pv.items == items {
                    reused += self.shards as u64;
                    versions.push(pv.clone());
                    continue;
                }
            }

            // Split into shards off the set's streaming iterator (each
            // per-shard list stays ascending); reuse any shard whose
            // content is unchanged since the previous version.
            let mut per_shard: Vec<Vec<u128>> = vec![Vec::new(); self.shards];
            for item in items.iter() {
                per_shard[shard_of(item, self.shards)].push(item);
            }
            let mut shards: Vec<Arc<ShardData>> = Vec::with_capacity(self.shards);
            for (i, shard_items) in per_shard.into_iter().enumerate() {
                let shard_digest = codec::content_digest(shard_items.iter().copied());
                let reusable = prev_version.and_then(|pv| pv.shards.get(i)).filter(|old| {
                    old.digest == shard_digest && old.items.iter().eq(shard_items.iter().copied())
                });
                match reusable {
                    Some(old) => {
                        reused += 1;
                        shards.push(old.clone());
                    }
                    None => {
                        rebuilt += 1;
                        let encoded = Arc::new(codec::encode_full(shard_items.iter().copied()));
                        shards.push(Arc::new(ShardData {
                            round,
                            digest: shard_digest,
                            items: AddrSet::from_sorted(shard_items),
                            encoded,
                        }));
                    }
                }
            }

            let full = Arc::new(codec::encode_full(&items));
            bytes_full += full.len() as u64;
            let (delta, prev_round) = match prev_version {
                Some(pv) => {
                    let d = Arc::new(codec::encode_delta(&pv.items, &items));
                    bytes_delta += d.len() as u64;
                    (Some(d), Some(pv.round))
                }
                None => (None, None),
            };
            versions.push(Arc::new(ArtifactVersion {
                kind,
                round,
                digest,
                items: Arc::new(items),
                full,
                delta,
                prev_round,
                shards,
            }));
        }

        let generation =
            Arc::new(Generation { round, date: date.to_string(), artifacts: versions });
        *self.current.write().expect("store lock") = Some(generation);

        if let Some(t) = &self.telemetry {
            t.counter("serve.publish.rounds").incr();
            t.counter("serve.publish.shards_rebuilt").add(rebuilt);
            t.counter("serve.publish.shards_reused").add(reused);
            t.counter("serve.publish.bytes_full").add(bytes_full);
            t.counter("serve.publish.bytes_delta").add(bytes_delta);
            t.histogram("serve.publish.encode_ms").record_duration(started.elapsed());
        }
    }

    /// Installs an already-built generation: validated version handles
    /// an edge mirror adopted from its origin after a checksum-clean
    /// sync ([`MirrorTier`](crate::mirror::MirrorTier) is the caller).
    /// Nothing is re-encoded — structural sharing extends across the
    /// tier, and the swap is as atomic as a publication's, so a mirror
    /// never serves a torn mix of rounds. Returns `false` (installing
    /// nothing) unless exactly one version per [`ArtifactKind::ALL`]
    /// entry arrives in canonical order.
    pub fn install_generation(
        &self,
        round: u64,
        date: &str,
        artifacts: Vec<Arc<ArtifactVersion>>,
    ) -> bool {
        if artifacts.len() != ArtifactKind::ALL.len()
            || artifacts.iter().zip(ArtifactKind::ALL).any(|(v, k)| v.kind() != k)
        {
            return false;
        }
        let generation = Arc::new(Generation { round, date: date.to_string(), artifacts });
        *self.current.write().expect("store lock") = Some(generation);
        if let Some(t) = &self.telemetry {
            t.counter("serve.publish.installed").incr();
        }
        true
    }

    /// Publishes a [`HitlistService`](sixdust_hitlist::HitlistService)'s
    /// current state as one round: the cleaned responsive set, the
    /// per-protocol slices from the last completed round, the aliased
    /// prefixes (packed as `network | len`, invertible for lengths the
    /// detector emits) and the GFW-filtered pool. The natural hook body
    /// for [`HitlistService::run_with`](sixdust_hitlist::HitlistService::run_with).
    pub fn publish_service(&self, svc: &sixdust_hitlist::HitlistService, round: u64, date: &str) {
        self.publish_round(round, date, service_artifacts(svc));
    }
}

/// Extracts the artifact payloads a service round publishes — shared by
/// [`SnapshotStore::publish_service`] and the mirror tier's timed publish
/// plan ([`crate::mirror::TimedPublish::from_service`]) so both paths
/// ship byte-identical artifacts.
pub fn service_artifacts(svc: &sixdust_hitlist::HitlistService) -> Vec<(ArtifactKind, AddrSet)> {
    let mut artifacts: Vec<(ArtifactKind, AddrSet)> = vec![
        (ArtifactKind::Responsive, svc.current_responsive().clone()),
        (
            ArtifactKind::AliasedPrefixes,
            svc.aliased().iter().map(|p| p.network().0 | u128::from(p.len())).collect(),
        ),
        (ArtifactKind::GfwFiltered, svc.gfw_impacted().iter().map(|a| a.0).collect()),
    ];
    for (proto, set) in svc.proto_responsive() {
        artifacts.push((ArtifactKind::PerProtocol(*proto), set.clone()));
    }
    artifacts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items(range: std::ops::Range<u128>) -> AddrSet {
        range.map(|i| i * 97 + 5).collect()
    }

    fn store() -> SnapshotStore {
        SnapshotStore::new(StoreConfig::builder().with_shards(4))
    }

    #[test]
    fn empty_store_serves_nothing() {
        let s = store();
        assert_eq!(s.current_round(), None);
        assert!(s.artifact(ArtifactKind::Responsive).is_none());
    }

    #[test]
    fn publish_then_read_round_trips() {
        let s = store();
        s.publish_round(3, "2021-01-03", vec![(ArtifactKind::Responsive, items(0..100))]);
        let v = s.artifact(ArtifactKind::Responsive).expect("published");
        assert_eq!(v.round(), 3);
        assert_eq!(v.items().len(), 100);
        assert_eq!(codec::decode_full(v.full_encoded()).expect("decodes"), **v.items());
        assert!(v.delta_encoded().is_none(), "first round has no delta");
        // Shards partition the items exactly.
        let mut recovered: Vec<u128> = Vec::new();
        for shard in v.shards() {
            shard.verify().expect("shard verifies");
            recovered.extend(shard.items().iter());
        }
        recovered.sort_unstable();
        assert_eq!(recovered, v.items().to_vec());
        // Unmentioned kinds exist as empty sets.
        let gfw = s.artifact(ArtifactKind::GfwFiltered).expect("empty artifact");
        assert!(gfw.items().is_empty());
    }

    #[test]
    fn second_round_carries_delta_and_reuses_unchanged_shards() {
        let s = store();
        s.publish_round(1, "d1", vec![(ArtifactKind::Responsive, items(0..1000))]);
        let v1 = s.artifact(ArtifactKind::Responsive).expect("v1");
        // One added item: at most one shard should be rebuilt.
        let mut next = items(0..1000);
        next.insert(999_999_999);
        s.publish_round(2, "d2", vec![(ArtifactKind::Responsive, next.clone())]);
        let v2 = s.artifact(ArtifactKind::Responsive).expect("v2");
        assert_eq!(v2.prev_round(), Some(1));
        let delta = v2.delta_encoded().expect("delta");
        let rebuilt = codec::apply_delta(v1.items(), delta).expect("applies");
        assert_eq!(rebuilt, next);
        let shared = v1.shards().iter().zip(v2.shards()).filter(|(a, b)| Arc::ptr_eq(a, b)).count();
        assert_eq!(shared, s.shard_count() - 1, "only the touched shard rebuilds");
    }

    #[test]
    fn unchanged_artifact_is_structurally_shared() {
        let s = store();
        s.publish_round(1, "d1", vec![(ArtifactKind::AliasedPrefixes, items(0..50))]);
        let v1 = s.artifact(ArtifactKind::AliasedPrefixes).expect("v1");
        s.publish_round(2, "d2", vec![(ArtifactKind::AliasedPrefixes, items(0..50))]);
        let v2 = s.artifact(ArtifactKind::AliasedPrefixes).expect("v2");
        assert!(Arc::ptr_eq(&v1, &v2), "identical content carries the version over");
        assert_eq!(v2.round(), 1, "round stays the one that built it");
    }

    #[test]
    fn install_generation_adopts_handles_and_rejects_malformed_sets() {
        let origin = store();
        origin.publish_round(5, "d5", vec![(ArtifactKind::Responsive, items(0..200))]);
        let versions: Vec<Arc<ArtifactVersion>> =
            ArtifactKind::ALL.iter().map(|&k| origin.artifact(k).expect("published")).collect();
        let mirror = store();
        assert!(mirror.install_generation(5, "d5", versions.clone()));
        assert_eq!(mirror.current_round(), Some(5));
        let adopted = mirror.artifact(ArtifactKind::Responsive).expect("installed");
        assert!(
            Arc::ptr_eq(&adopted, &origin.artifact(ArtifactKind::Responsive).unwrap()),
            "structural sharing extends across the tier"
        );
        // A short or reordered set installs nothing.
        let empty_mirror = store();
        assert!(!empty_mirror.install_generation(5, "d5", versions[..3].to_vec()));
        let mut reversed = versions;
        reversed.reverse();
        assert!(!empty_mirror.install_generation(5, "d5", reversed));
        assert_eq!(empty_mirror.current_round(), None);
    }

    #[test]
    fn artifact_kinds_have_stable_order_and_stems() {
        for (i, kind) in ArtifactKind::ALL.into_iter().enumerate() {
            assert_eq!(kind.index(), i);
        }
        assert_eq!(ArtifactKind::Responsive.file_stem(), "responsive-addresses");
        assert_eq!(ArtifactKind::PerProtocol(Protocol::Udp53).file_stem(), "responsive-udp53");
    }
}
