//! The resilient distribution tier: one origin, N edge mirrors.
//!
//! The ROADMAP's "serve path to millions of clients" calls for exactly
//! the architecture real hitlist services run: a single origin
//! [`SnapshotStore`] that publications land in, and a tier of edge
//! mirrors that *pull* from it over the delta codec and serve consumers
//! from their own generation state. This module models that tier on the
//! same virtual-microsecond timeline as the front ends:
//!
//! * **Sync with checksum-first validation** — a mirror transfers each
//!   changed artifact as a delta when its held round matches the
//!   origin's diff base (full snapshot otherwise), validates the wire
//!   bytes *before* adopting anything, and installs the whole
//!   generation with one atomic swap ([`SnapshotStore::install_generation`]).
//!   A corrupted transfer rejects the entire sync — a mirror never
//!   serves a torn mix of rounds (last-good wins).
//! * **Per-mirror sync lag** — mirrors sync on a staggered interval
//!   schedule, so at any instant different mirrors may hold different
//!   generations; consumers see that as per-mirror ETags.
//! * **Stale-while-revalidate** — when the publish plan says a newer
//!   round should be live (origin blackout, rejected syncs), a mirror
//!   keeps serving its last-good generation, *counts* the staleness
//!   (`serve.mirror.stale_served`), and schedules a cooldown-limited
//!   revalidation sync instead of erroring.
//!
//! Faults come from a seeded [`ServeFaultConfig`]; everything replays
//! byte-identically for a fixed seed.

use std::sync::Arc;

use sixdust_addr::AddrSet;
use sixdust_telemetry::{Counter, FlightRecorder, Gauge, Registry};

use crate::codec;
use crate::faults::ServeFaultConfig;
use crate::server::{Frontend, FrontendConfig, FrontendTotals, Outcome, Request};
use crate::store::{ArtifactKind, ArtifactVersion, SnapshotStore, StoreConfig};

/// Tier configuration.
#[derive(Debug, Clone)]
pub struct MirrorTierConfig {
    /// Number of edge mirrors (at least 1).
    pub mirrors: usize,
    /// Interval between scheduled syncs of one mirror, virtual
    /// microseconds.
    pub sync_interval_us: u64,
    /// Phase offset between consecutive mirrors' sync schedules, so the
    /// tier does not hammer the origin in lockstep (and so per-mirror
    /// lag is observable).
    pub sync_stagger_us: u64,
    /// Minimum gap between stale-triggered revalidation syncs of one
    /// mirror (stale-while-revalidate cooldown).
    pub revalidate_cooldown_us: u64,
    /// Front-end configuration applied to every mirror.
    pub frontend: FrontendConfig,
}

impl Default for MirrorTierConfig {
    fn default() -> MirrorTierConfig {
        MirrorTierConfig {
            mirrors: 4,
            sync_interval_us: 3_600_000_000,
            sync_stagger_us: 60_000_000,
            revalidate_cooldown_us: 300_000_000,
            frontend: FrontendConfig::default(),
        }
    }
}

impl MirrorTierConfig {
    /// Starts from the default configuration.
    pub fn builder() -> MirrorTierConfig {
        MirrorTierConfig::default()
    }

    /// Sets the mirror count (at least 1).
    pub fn with_mirrors(mut self, mirrors: usize) -> MirrorTierConfig {
        self.mirrors = mirrors.max(1);
        self
    }

    /// Sets the scheduled sync interval.
    pub fn with_sync_interval_us(mut self, interval: u64) -> MirrorTierConfig {
        self.sync_interval_us = interval.max(1);
        self
    }

    /// Sets the per-mirror sync phase offset.
    pub fn with_sync_stagger_us(mut self, stagger: u64) -> MirrorTierConfig {
        self.sync_stagger_us = stagger;
        self
    }

    /// Sets the revalidation cooldown.
    pub fn with_revalidate_cooldown_us(mut self, cooldown: u64) -> MirrorTierConfig {
        self.revalidate_cooldown_us = cooldown.max(1);
        self
    }

    /// Sets the per-mirror front-end configuration.
    pub fn with_frontend(mut self, frontend: FrontendConfig) -> MirrorTierConfig {
        self.frontend = frontend;
        self
    }
}

/// One entry of a day's publish plan: at `at_us` the origin is supposed
/// to publish `round`. Under an origin blackout the publish is deferred
/// (the *target* round still advances, which is what makes mirror
/// staleness measurable and burns the publish-freshness SLO).
#[derive(Debug, Clone)]
pub struct TimedPublish {
    /// When the publish is scheduled, microseconds into the day.
    pub at_us: u64,
    /// Round the publish installs.
    pub round: u64,
    /// ISO date label of the publication.
    pub date: String,
    /// Artifact payloads (missing kinds publish as empty sets).
    pub artifacts: Vec<(ArtifactKind, AddrSet)>,
}

impl TimedPublish {
    /// Captures a hitlist service round as one plan entry, with the same
    /// artifact payloads [`SnapshotStore::publish_service`] would install
    /// — so a chaos-day replay can re-publish real service history on a
    /// schedule of its own choosing.
    pub fn from_service(
        svc: &sixdust_hitlist::HitlistService,
        at_us: u64,
        round: u64,
        date: &str,
    ) -> TimedPublish {
        TimedPublish {
            at_us,
            round,
            date: date.to_string(),
            artifacts: crate::store::service_artifacts(svc),
        }
    }
}

/// Running totals of the tier's sync and degradation machinery — the
/// mirror-side rows of the day's report card.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct TierTotals {
    /// Completed generation syncs (mirror adopted a new generation).
    pub syncs: u64,
    /// Artifacts transferred as full snapshots across all syncs.
    pub sync_full: u64,
    /// Artifacts transferred as deltas across all syncs.
    pub sync_delta: u64,
    /// Syncs rejected wholesale by checksum-first validation (torn-sync
    /// rejection kept the last-good generation).
    pub sync_rejected: u64,
    /// Sync attempts blocked by an origin blackout or mirror outage.
    pub sync_blocked: u64,
    /// Wire bytes moved by sync transfers.
    pub sync_bytes: u64,
    /// Requests answered from a generation older than the publish plan's
    /// target round (stale-while-revalidate serving).
    pub stale_served: u64,
    /// Stale-triggered revalidation syncs (cooldown-limited).
    pub revalidations: u64,
}

/// Telemetry handles, resolved once at attachment (hot-path rule).
struct TierMeters {
    syncs: Counter,
    sync_full: Counter,
    sync_delta: Counter,
    sync_rejected: Counter,
    sync_blocked: Counter,
    sync_bytes: Counter,
    stale_served: Counter,
    revalidations: Counter,
    lag_rounds: Gauge,
}

impl TierMeters {
    fn resolve(registry: &Registry) -> TierMeters {
        TierMeters {
            syncs: registry.counter("serve.mirror.syncs"),
            sync_full: registry.counter("serve.mirror.sync_full"),
            sync_delta: registry.counter("serve.mirror.sync_delta"),
            sync_rejected: registry.counter("serve.mirror.sync_rejected"),
            sync_blocked: registry.counter("serve.mirror.sync_blocked"),
            sync_bytes: registry.counter("serve.mirror.sync_bytes"),
            stale_served: registry.counter("serve.mirror.stale_served"),
            revalidations: registry.counter("serve.mirror.revalidations"),
            lag_rounds: registry.gauge("serve.mirror.lag_rounds"),
        }
    }
}

/// One edge mirror: its own store (generation state) and front end.
struct Mirror {
    store: Arc<SnapshotStore>,
    frontend: Frontend,
    next_sync_us: u64,
    next_revalidate_us: u64,
    /// Transfer attempts so far — salts the in-flight corruption draw so
    /// a rejected sync re-rolls on retry instead of failing forever.
    sync_attempts: u64,
}

/// The origin + N-mirror distribution tier.
pub struct MirrorTier {
    config: MirrorTierConfig,
    origin: Arc<SnapshotStore>,
    faults: ServeFaultConfig,
    mirrors: Vec<Mirror>,
    /// The round the publish plan says should be live right now; mirrors
    /// serving older rounds are stale.
    target_round: u64,
    /// Earliest scheduled sync across mirrors — lets [`MirrorTier::advance`]
    /// return without walking the tier when nothing is due (zero forces a
    /// full walk on the next call, e.g. after a publish moves the target).
    next_due_us: u64,
    registry: Option<Registry>,
    flight: Option<FlightRecorder>,
    meters: Option<TierMeters>,
    totals: TierTotals,
}

impl std::fmt::Debug for MirrorTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MirrorTier")
            .field("mirrors", &self.mirrors.len())
            .field("target_round", &self.target_round)
            .field("totals", &self.totals)
            .finish()
    }
}

impl MirrorTier {
    /// Creates a tier of `config.mirrors` empty mirrors over `origin`.
    /// Mirror `i`'s first scheduled sync is at `i * sync_stagger_us`.
    ///
    /// # Panics
    ///
    /// If `config.frontend` fails [`FrontendConfig::validate`] (same
    /// contract as [`Frontend::new`]).
    pub fn new(
        config: MirrorTierConfig,
        origin: Arc<SnapshotStore>,
        faults: ServeFaultConfig,
    ) -> MirrorTier {
        let target_round = origin.current_round().unwrap_or(0);
        let mut tier = MirrorTier {
            mirrors: Vec::new(),
            config,
            origin,
            faults,
            target_round,
            next_due_us: 0,
            registry: None,
            flight: None,
            meters: None,
            totals: TierTotals::default(),
        };
        tier.mirrors = (0..tier.config.mirrors.max(1))
            .map(|i| {
                let store = Arc::new(SnapshotStore::new(StoreConfig::default()));
                Mirror {
                    frontend: Frontend::new(tier.config.frontend.clone(), store.clone()),
                    store,
                    next_sync_us: i as u64 * tier.config.sync_stagger_us,
                    next_revalidate_us: 0,
                    sync_attempts: 0,
                }
            })
            .collect();
        // Warm deploy: mirrors start from the origin's current image
        // (an out-of-band copy, like service publication — not subject
        // to the fault plan) so a tier never boots cold behind a live
        // origin. Day-time sync traffic is what the faults govern.
        if let Some(round) = tier.origin.current_round() {
            let date = tier.origin.current_date().unwrap_or_default();
            let versions: Vec<Arc<ArtifactVersion>> =
                ArtifactKind::ALL.iter().filter_map(|&kind| tier.origin.artifact(kind)).collect();
            for mirror in &tier.mirrors {
                mirror.store.install_generation(round, &date, versions.clone());
            }
        }
        tier
    }

    /// Attaches a metrics registry (`serve.mirror.*` plus every mirror
    /// front end's `serve.*` set, aggregated across mirrors). Attach
    /// before serving traffic: the mirror front ends are rebuilt.
    pub fn with_telemetry(mut self, registry: &Registry) -> MirrorTier {
        self.meters = Some(TierMeters::resolve(registry));
        self.registry = Some(registry.clone());
        self.rebuild_frontends();
        self
    }

    /// Attaches a flight recorder to every mirror front end (shed
    /// decisions land in its event ring). Attach before serving traffic.
    pub fn with_flight(mut self, recorder: FlightRecorder) -> MirrorTier {
        self.flight = Some(recorder);
        self.rebuild_frontends();
        self
    }

    fn rebuild_frontends(&mut self) {
        for mirror in &mut self.mirrors {
            let mut fe = Frontend::new(self.config.frontend.clone(), mirror.store.clone());
            if let Some(registry) = &self.registry {
                fe = fe.with_telemetry(registry);
            }
            if let Some(flight) = &self.flight {
                fe = fe.with_flight(flight.clone());
            }
            mirror.frontend = fe;
        }
    }

    /// The origin store publications land in.
    pub fn origin(&self) -> &Arc<SnapshotStore> {
        &self.origin
    }

    /// The fault plan driving the tier.
    pub fn faults(&self) -> &ServeFaultConfig {
        &self.faults
    }

    /// Number of mirrors.
    pub fn mirror_count(&self) -> usize {
        self.mirrors.len()
    }

    /// The generation round mirror `i` currently serves, if any.
    pub fn mirror_round(&self, mirror: usize) -> Option<u64> {
        self.mirrors.get(mirror).and_then(|m| m.store.current_round())
    }

    /// The round the publish plan says should be live.
    pub fn target_round(&self) -> u64 {
        self.target_round
    }

    /// Rounds the *origin* is behind the publish plan — the
    /// publish-freshness staleness clock under a blackout.
    pub fn staleness_rounds(&self) -> u64 {
        self.target_round.saturating_sub(self.origin.current_round().unwrap_or(0))
    }

    /// Rounds the most-lagged mirror is behind the publish plan.
    pub fn max_lag_rounds(&self) -> u64 {
        self.mirrors
            .iter()
            .map(|m| self.target_round.saturating_sub(m.store.current_round().unwrap_or(0)))
            .max()
            .unwrap_or(0)
    }

    /// The tier's sync/degradation totals so far.
    pub fn totals(&self) -> &TierTotals {
        &self.totals
    }

    /// One mirror front end's running totals.
    pub fn frontend_totals(&self, mirror: usize) -> &FrontendTotals {
        self.mirrors[mirror].frontend.totals()
    }

    /// Every mirror front end's totals folded into one report card.
    pub fn merged_frontend_totals(&self) -> FrontendTotals {
        let mut merged = FrontendTotals::default();
        for mirror in &self.mirrors {
            merged.merge(mirror.frontend.totals());
        }
        merged
    }

    /// Advances the publish plan's target round (a publish is *due*,
    /// whether or not the blackout lets it land).
    pub fn set_target_round(&mut self, round: u64) {
        self.target_round = self.target_round.max(round);
        // Lag may have grown: force the next advance() to take the full
        // walk and refresh the gauge.
        self.next_due_us = 0;
    }

    /// Attempts to land a scheduled publish on the origin at `at_us`.
    /// Returns `false` (and publishes nothing) during an origin
    /// blackout — the caller keeps the entry queued and retries after
    /// the window.
    pub fn apply_publish(&mut self, at_us: u64, publish: &TimedPublish) -> bool {
        self.set_target_round(publish.round);
        if self.faults.origin_blackout(at_us) {
            return false;
        }
        self.origin.publish_round(publish.round, &publish.date, publish.artifacts.clone());
        true
    }

    /// Publishes a hitlist service round straight into the origin — the
    /// tier-aware replacement for
    /// [`SnapshotStore::publish_service`]; the natural
    /// [`HitlistService::run_with`](sixdust_hitlist::HitlistService::run_with)
    /// hook body when serving through mirrors. Not subject to the fault
    /// plan (service publication happens out of band of the serve day).
    pub fn publish_service(
        &mut self,
        svc: &sixdust_hitlist::HitlistService,
        round: u64,
        date: &str,
    ) {
        self.set_target_round(round);
        self.origin.publish_service(svc, round, date);
    }

    /// Processes every scheduled sync due at or before `at_us` and
    /// refreshes the lag gauge. Called implicitly by [`MirrorTier::handle`].
    pub fn advance(&mut self, at_us: u64) {
        // Fast path: no sync is due and no publish has moved the target
        // since the last walk. `handle` calls this per request, so a
        // million-arrival day must not pay O(mirrors) per arrival.
        if at_us < self.next_due_us {
            return;
        }
        for i in 0..self.mirrors.len() {
            while self.mirrors[i].next_sync_us <= at_us {
                let scheduled = self.mirrors[i].next_sync_us;
                self.try_sync(i, scheduled);
                self.mirrors[i].next_sync_us = scheduled + self.config.sync_interval_us;
            }
        }
        self.next_due_us =
            self.mirrors.iter().map(|m| m.next_sync_us).min().unwrap_or(u64::MAX);
        if let Some(m) = &self.meters {
            m.lag_rounds.set(self.max_lag_rounds() as i64);
        }
    }

    /// One sync attempt of mirror `i` at `at_us`: transfer every changed
    /// artifact (delta where the held round matches the origin's diff
    /// base), validate checksum-first, adopt the whole generation or
    /// nothing. Returns whether the mirror is in sync with the origin
    /// afterwards.
    pub fn try_sync(&mut self, i: usize, at_us: u64) -> bool {
        if self.faults.origin_blackout(at_us) || self.faults.mirror_down(i, at_us) {
            self.totals.sync_blocked += 1;
            if let Some(m) = &self.meters {
                m.sync_blocked.incr();
            }
            return false;
        }
        let Some(origin_round) = self.origin.current_round() else {
            return false;
        };
        if self.mirrors[i].store.current_round() == Some(origin_round) {
            return true;
        }
        let date = self.origin.current_date().unwrap_or_default();
        self.mirrors[i].sync_attempts += 1;
        let attempt = self.mirrors[i].sync_attempts;

        let mut adopted: Vec<Arc<ArtifactVersion>> = Vec::with_capacity(ArtifactKind::ALL.len());
        let mut full_transfers = 0u64;
        let mut delta_transfers = 0u64;
        let mut wire_bytes = 0u64;
        for kind in ArtifactKind::ALL {
            let Some(version) = self.origin.artifact(kind) else {
                return false;
            };
            let held = self.mirrors[i].store.artifact(kind);
            // Unchanged content: adopt the handle, no transfer.
            if held.as_ref().is_some_and(|h| h.digest() == version.digest()) {
                adopted.push(version);
                continue;
            }
            let use_delta = held.as_ref().is_some_and(|h| Some(h.round()) == version.prev_round())
                && version.delta_encoded().is_some();
            let wire: Arc<Vec<u8>> = if use_delta {
                version.delta_encoded().expect("checked above").clone()
            } else {
                version.full_encoded().clone()
            };
            // In-flight corruption (seeded, per transfer identity).
            let mut transfer: Vec<u8>;
            let body: &[u8] = if self.faults.corrupt_sync(i, version.round(), kind.index(), attempt)
            {
                transfer = (*wire).clone();
                if !transfer.is_empty() {
                    let pos = self.faults.corrupt_position(
                        i,
                        version.round(),
                        kind.index(),
                        attempt,
                        transfer.len(),
                    );
                    transfer[pos] ^= 0x20;
                }
                &transfer
            } else {
                &wire
            };
            // Checksum-first validation: a flip anywhere rejects the
            // whole sync, and the mirror keeps its last-good generation.
            let valid = if use_delta {
                let base = held.as_ref().expect("delta implies held");
                codec::apply_delta(base.items(), body).is_ok()
            } else {
                codec::verify_full(body, version.digest()).is_ok()
            };
            if !valid {
                self.totals.sync_rejected += 1;
                if let Some(m) = &self.meters {
                    m.sync_rejected.incr();
                }
                return false;
            }
            wire_bytes += wire.len() as u64;
            if use_delta {
                delta_transfers += 1;
            } else {
                full_transfers += 1;
            }
            adopted.push(version);
        }

        let installed = self.mirrors[i].store.install_generation(origin_round, &date, adopted);
        debug_assert!(installed, "origin generations are always complete and ordered");
        self.totals.syncs += 1;
        self.totals.sync_full += full_transfers;
        self.totals.sync_delta += delta_transfers;
        self.totals.sync_bytes += wire_bytes;
        if let Some(m) = &self.meters {
            m.syncs.incr();
            m.sync_full.add(full_transfers);
            m.sync_delta.add(delta_transfers);
            m.sync_bytes.add(wire_bytes);
        }
        true
    }

    /// Routes one request to mirror `mirror` at its virtual arrival
    /// time. Returns `None` when the mirror is inside an outage window
    /// (unreachable: no answer at all, the client's retry layer deals
    /// with it). Served latencies are inflated for slow mirrors; answers
    /// older than the publish plan's target round are counted stale and
    /// trigger a cooldown-limited revalidation sync
    /// (stale-while-revalidate).
    pub fn handle(&mut self, mirror: usize, request: &Request) -> Option<Outcome> {
        let at = request.at_us;
        self.advance(at);
        if self.faults.mirror_down(mirror, at) {
            return None;
        }
        // An empty mirror is infinitely stale: bootstrap-sync on demand
        // (cooldown-limited, same knob as revalidation) before answering
        // rather than shrugging `Unavailable` until the next scheduled
        // sync comes around.
        if self.mirrors[mirror].store.current_round().is_none()
            && self.origin.current_round().is_some()
            && at >= self.mirrors[mirror].next_revalidate_us
        {
            self.mirrors[mirror].next_revalidate_us = at + self.config.revalidate_cooldown_us;
            self.totals.revalidations += 1;
            if let Some(m) = &self.meters {
                m.revalidations.incr();
            }
            self.try_sync(mirror, at);
        }
        let outcome = match self.mirrors[mirror].frontend.handle(request) {
            Outcome::Body { bytes, round, digest, delta, cached, latency_us } => Outcome::Body {
                bytes,
                round,
                digest,
                delta,
                cached,
                latency_us: self.faults.inflate_latency(mirror, latency_us),
            },
            Outcome::NotModified { round, latency_us } => Outcome::NotModified {
                round,
                latency_us: self.faults.inflate_latency(mirror, latency_us),
            },
            other => other,
        };
        let served_round = match &outcome {
            Outcome::Body { round, .. } | Outcome::NotModified { round, .. } => Some(*round),
            _ => None,
        };
        if served_round.is_some_and(|r| r < self.target_round) {
            self.totals.stale_served += 1;
            if let Some(m) = &self.meters {
                m.stale_served.incr();
            }
            if at >= self.mirrors[mirror].next_revalidate_us {
                self.mirrors[mirror].next_revalidate_us = at + self.config.revalidate_cooldown_us;
                self.totals.revalidations += 1;
                if let Some(m) = &self.meters {
                    m.revalidations.incr();
                }
                self.try_sync(mirror, at);
            }
        }
        Some(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::FetchKind;

    fn artifacts(round: u64) -> Vec<(ArtifactKind, AddrSet)> {
        vec![(ArtifactKind::Responsive, (0..500 + round as u128 * 40).map(|i| i * 13).collect())]
    }

    fn request(client: u64, at_us: u64) -> Request {
        Request {
            client,
            kind: ArtifactKind::Responsive,
            fetch: FetchKind::Full,
            if_none_match: None,
            at_us,
        }
    }

    fn tier_over(origin_rounds: u64, faults: ServeFaultConfig, mirrors: usize) -> MirrorTier {
        let origin = Arc::new(SnapshotStore::new(StoreConfig::default()));
        for round in 1..=origin_rounds {
            origin.publish_round(round, &format!("d{round}"), artifacts(round));
        }
        let config = MirrorTierConfig::builder()
            .with_mirrors(mirrors)
            .with_sync_stagger_us(0)
            .with_sync_interval_us(1_000_000);
        MirrorTier::new(config, origin, faults)
    }

    #[test]
    fn mirrors_deploy_warm_then_sync_delta_with_structural_sharing() {
        let mut tier = tier_over(1, ServeFaultConfig::lossless(), 1);
        // Warm deploy: the origin's live generation is adopted at
        // construction, handle-for-handle — no wire transfer at all.
        assert_eq!(tier.mirror_round(0), Some(1));
        assert_eq!(tier.totals().syncs, 0, "deploy image, not a sync");
        assert_eq!(tier.totals().sync_bytes, 0);
        // Next round: the mirror holds the diff base, so the changed
        // artifact moves as a delta and unchanged handles are shared.
        tier.origin().publish_round(2, "d2", artifacts(2));
        tier.set_target_round(2);
        tier.advance(1_000_000);
        assert_eq!(tier.mirror_round(0), Some(2));
        assert_eq!(tier.totals().sync_delta, 1, "held diff base: the changed artifact is a delta");
        assert_eq!(tier.totals().sync_full, 0, "unchanged artifacts adopt by digest");
        let origin_v = tier.origin().artifact(ArtifactKind::Responsive).unwrap();
        let mirror_v = tier.mirrors[0].store.artifact(ArtifactKind::Responsive).unwrap();
        assert!(Arc::ptr_eq(&origin_v, &mirror_v), "validated sync adopts the origin handle");
        assert!(tier.totals().sync_bytes > 0);
    }

    #[test]
    fn a_cold_tier_bootstraps_with_full_snapshots() {
        // Origin empty at deploy: the first generation must move over
        // the wire, every artifact as a full snapshot.
        let mut tier = tier_over(0, ServeFaultConfig::lossless(), 1);
        assert_eq!(tier.mirror_round(0), None);
        tier.origin().publish_round(1, "d1", artifacts(1));
        tier.set_target_round(1);
        tier.advance(1_000_000);
        assert_eq!(tier.mirror_round(0), Some(1));
        assert_eq!(
            tier.totals().sync_full,
            ArtifactKind::ALL.len() as u64,
            "an empty mirror transfers every artifact as a full snapshot"
        );
        assert_eq!(tier.totals().sync_delta, 0);
        assert!(tier.totals().sync_bytes > 0);
    }

    #[test]
    fn corrupted_sync_rejects_wholesale_and_keeps_last_good() {
        let mut tier = tier_over(1, ServeFaultConfig::lossless(), 1);
        tier.advance(0);
        assert_eq!(tier.mirror_round(0), Some(1));
        // Every transfer corrupt from here on: round 2 must never land.
        tier.faults = ServeFaultConfig::builder().with_sync_corrupt_permille(1_000);
        tier.origin().publish_round(2, "d2", artifacts(2));
        tier.set_target_round(2);
        tier.advance(10_000_000);
        assert!(tier.totals().sync_rejected > 0);
        assert_eq!(tier.mirror_round(0), Some(1), "torn sync keeps the last-good generation");
        // The mirror still answers — stale, and counted as such.
        let out = tier.handle(0, &request(1, 10_000_001)).expect("mirror reachable");
        assert!(matches!(out, Outcome::Body { round: 1, .. }));
        assert!(tier.totals().stale_served > 0);
        assert!(tier.totals().revalidations > 0, "stale service schedules a revalidation");
    }

    #[test]
    fn blackout_defers_publish_and_serves_stale_until_it_lifts() {
        let faults = ServeFaultConfig::builder().with_origin_blackout(100, 2_000_000);
        let mut tier = tier_over(1, faults, 1);
        tier.advance(0);
        let publish =
            TimedPublish { at_us: 500, round: 2, date: "d2".to_string(), artifacts: artifacts(2) };
        assert!(!tier.apply_publish(500, &publish), "blackout defers the publish");
        assert_eq!(tier.target_round(), 2, "the plan's target still advances");
        assert_eq!(tier.staleness_rounds(), 1, "origin is one round behind plan");
        let out = tier.handle(0, &request(1, 1_000)).expect("reachable");
        assert!(matches!(out, Outcome::Body { round: 1, .. }), "stale-while-revalidate");
        assert_eq!(tier.totals().stale_served, 1);
        assert!(tier.totals().sync_blocked > 0, "revalidation cannot reach the origin");
        // Blackout over: the publish lands, the next sync catches up.
        assert!(tier.apply_publish(2_000_000, &publish));
        assert_eq!(tier.staleness_rounds(), 0);
        tier.advance(3_000_000);
        assert_eq!(tier.mirror_round(0), Some(2));
        assert_eq!(tier.max_lag_rounds(), 0);
    }

    #[test]
    fn outage_makes_a_mirror_unreachable_and_slow_mirrors_inflate() {
        let faults =
            ServeFaultConfig::builder().with_mirror_outage(0, 0, 1_000).with_slow_mirror(1, 4_000);
        let mut tier = tier_over(1, faults, 2);
        assert!(tier.handle(0, &request(1, 500)).is_none(), "outage: no answer at all");
        // Mirror 0's t=0 sync fell inside its outage; the next scheduled
        // sync (1s) lands after the window, so by 2s it serves normally.
        let normal = tier.handle(0, &request(1, 2_000_000)).expect("outage over");
        let slow = tier.handle(1, &request(2, 2_000_000)).expect("reachable");
        let (Outcome::Body { latency_us: fast, .. }, Outcome::Body { latency_us: slow, .. }) =
            (normal, slow)
        else {
            panic!("both mirrors serve bodies");
        };
        assert_eq!(slow, fast * 5, "4000 permille inflation is 5x");
    }
}
