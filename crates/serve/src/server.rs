//! The request layer: what one front-end process does to a request
//! stream — ETag conditional fetches, an LRU cache of response bodies,
//! per-client token-bucket admission and a global concurrency cap with
//! explicit load-shedding accounting.
//!
//! The layer is driven on *virtual* time (microseconds since midnight of
//! the simulated day), so a whole high-QPS day replays in well under a
//! second of wall clock and every run is deterministic. Latencies are
//! synthetic but structurally honest: a constant service floor, a
//! render penalty on cache misses, and a transfer term proportional to
//! body size.

use std::collections::BinaryHeap;
use std::collections::HashMap;
use std::sync::Arc;

use sixdust_telemetry::{Counter, FlightRecorder, Histogram, HistogramSnapshot, Registry};

use crate::store::{ArtifactKind, SnapshotStore};

/// Front-end configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrontendConfig {
    /// LRU cache capacity, in encoded response bodies.
    pub cache_capacity: usize,
    /// Maximum requests in flight at once; arrivals beyond it are shed.
    pub global_concurrency: usize,
    /// Token-bucket burst per client.
    pub client_burst: u32,
    /// Token-bucket refill per client, tokens per virtual minute.
    pub client_rate_per_min: u32,
    /// Constant service floor, microseconds.
    pub base_latency_us: u64,
    /// Extra latency when a body misses the cache and must be rendered.
    pub render_latency_us: u64,
    /// Transfer rate for the size-proportional latency term, bytes per
    /// microsecond (50 ≈ 400 Mbit/s).
    pub bytes_per_us: u64,
}

impl Default for FrontendConfig {
    fn default() -> FrontendConfig {
        FrontendConfig {
            cache_capacity: 12,
            global_concurrency: 64,
            client_burst: 8,
            client_rate_per_min: 4,
            base_latency_us: 1_500,
            render_latency_us: 4_000,
            bytes_per_us: 50,
        }
    }
}

/// Why a [`FrontendConfig`] failed validation. Each rejected value used
/// to be silently clamped or to produce pathological behavior (a
/// zero-capacity cache that thrashes, a zero cap that sheds everything,
/// a zero-burst bucket that admits nobody, a zero transfer rate that
/// divides away the size term) — [`FrontendConfig::build`] now rejects
/// them loudly instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrontendConfigError {
    /// `cache_capacity` is zero: every body would miss and re-render.
    ZeroCacheCapacity,
    /// `global_concurrency` is zero: every request would be shed.
    ZeroConcurrency,
    /// `client_burst` is zero: no client could ever be admitted. A zero
    /// *rate* with a positive burst stays legal — that is a finite total
    /// quota, a legitimate policy.
    ZeroClientBurst,
    /// `bytes_per_us` is zero: the size-proportional latency term would
    /// be undefined.
    ZeroTransferRate,
}

impl std::fmt::Display for FrontendConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrontendConfigError::ZeroCacheCapacity => {
                write!(f, "cache_capacity must be at least 1 body")
            }
            FrontendConfigError::ZeroConcurrency => {
                write!(f, "global_concurrency must admit at least 1 request")
            }
            FrontendConfigError::ZeroClientBurst => {
                write!(f, "client_burst must grant at least 1 token")
            }
            FrontendConfigError::ZeroTransferRate => {
                write!(f, "bytes_per_us must be at least 1")
            }
        }
    }
}

impl std::error::Error for FrontendConfigError {}

impl FrontendConfig {
    /// Starts from the default configuration.
    pub fn builder() -> FrontendConfig {
        FrontendConfig::default()
    }

    /// Sets the LRU cache capacity.
    pub fn with_cache_capacity(mut self, entries: usize) -> FrontendConfig {
        self.cache_capacity = entries;
        self
    }

    /// Sets the global concurrency cap.
    pub fn with_global_concurrency(mut self, cap: usize) -> FrontendConfig {
        self.global_concurrency = cap;
        self
    }

    /// Sets the per-client token bucket (burst, refill per minute).
    pub fn with_client_bucket(mut self, burst: u32, rate_per_min: u32) -> FrontendConfig {
        self.client_burst = burst;
        self.client_rate_per_min = rate_per_min;
        self
    }

    /// Checks the configuration without consuming it.
    pub fn validate(&self) -> Result<(), FrontendConfigError> {
        if self.cache_capacity == 0 {
            return Err(FrontendConfigError::ZeroCacheCapacity);
        }
        if self.global_concurrency == 0 {
            return Err(FrontendConfigError::ZeroConcurrency);
        }
        if self.client_burst == 0 {
            return Err(FrontendConfigError::ZeroClientBurst);
        }
        if self.bytes_per_us == 0 {
            return Err(FrontendConfigError::ZeroTransferRate);
        }
        Ok(())
    }

    /// Finishes the builder chain, rejecting configurations that would
    /// behave pathologically at serve time.
    pub fn build(self) -> Result<FrontendConfig, FrontendConfigError> {
        self.validate()?;
        Ok(self)
    }
}

/// What a request asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchKind {
    /// The full current snapshot.
    Full,
    /// The delta on top of the round the client already holds.
    DeltaSince(u64),
}

/// One consumer request at a point in virtual time.
#[derive(Debug, Clone)]
pub struct Request {
    /// Requesting client id.
    pub client: u64,
    /// Which artifact.
    pub kind: ArtifactKind,
    /// Full or delta fetch.
    pub fetch: FetchKind,
    /// Conditional-fetch ETag: the content digest the client holds.
    pub if_none_match: Option<u64>,
    /// Arrival time, microseconds into the simulated day.
    pub at_us: u64,
}

/// How the front end answered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// A body was served.
    Body {
        /// Bytes on the wire.
        bytes: u64,
        /// Round of the served version.
        round: u64,
        /// ETag (content digest) of the served version.
        digest: u64,
        /// Whether a delta (vs full) body was served.
        delta: bool,
        /// Whether the body came from the LRU cache.
        cached: bool,
        /// Synthetic service latency.
        latency_us: u64,
    },
    /// The client's ETag still matches: 304, no body.
    NotModified {
        /// Round of the current version.
        round: u64,
        /// Synthetic service latency.
        latency_us: u64,
    },
    /// Shed by the client's token bucket.
    ShedClient,
    /// Shed by the global concurrency cap.
    ShedGlobal,
    /// Nothing has been published yet.
    Unavailable,
}

/// Running totals of one front end — the per-day report card.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct FrontendTotals {
    /// Requests received (every outcome counts).
    pub requests: u64,
    /// Bodies served.
    pub bodies: u64,
    /// Body bytes sent.
    pub bytes_sent: u64,
    /// 304 responses.
    pub not_modified: u64,
    /// LRU cache hits.
    pub cache_hits: u64,
    /// LRU cache misses.
    pub cache_misses: u64,
    /// Requests shed by per-client buckets.
    pub shed_client: u64,
    /// Requests shed by the global concurrency cap.
    pub shed_global: u64,
    /// Delta bodies served.
    pub delta_fetches: u64,
    /// Full bodies served.
    pub full_fetches: u64,
    /// Delta requests that fell back to a full body (stale base round).
    pub delta_fallbacks: u64,
    /// Requests that arrived before anything was published.
    pub unavailable: u64,
    /// Bytes the delta encoding saved: the size of the full bodies each
    /// served delta replaced, minus the delta bytes actually sent.
    #[serde(default)]
    pub bytes_saved_by_delta: u64,
}

impl FrontendTotals {
    /// Adds another front end's totals into this one — how a
    /// [`MirrorTier`](crate::mirror::MirrorTier) day folds its mirrors
    /// into one report card.
    pub fn merge(&mut self, other: &FrontendTotals) {
        self.requests += other.requests;
        self.bodies += other.bodies;
        self.bytes_sent += other.bytes_sent;
        self.not_modified += other.not_modified;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.shed_client += other.shed_client;
        self.shed_global += other.shed_global;
        self.delta_fetches += other.delta_fetches;
        self.full_fetches += other.full_fetches;
        self.delta_fallbacks += other.delta_fallbacks;
        self.unavailable += other.unavailable;
        self.bytes_saved_by_delta += other.bytes_saved_by_delta;
    }
}

/// Per-client token bucket on virtual time. Integer math in
/// milli-tokens keeps refill exact and the replay deterministic.
#[derive(Debug, Clone, Copy)]
struct Bucket {
    milli_tokens: u64,
    last_us: u64,
    /// Refill residue in µs·rate units, always `< 60_000` (one
    /// milli-token's worth). Without it, every poll truncates the
    /// fractional part of the refill *and* advances `last_us`, so a
    /// client polled at sub-milli-token intervals refills zero tokens
    /// forever — the error grows with arrival density, i.e. exactly
    /// under flash-crowd load.
    carry: u64,
}

/// A tiny exact LRU keyed by `(artifact, round, delta)`. Capacity is a
/// handful of entries, so linear scans beat pointer-chasing here.
#[derive(Debug)]
struct LruCache {
    capacity: usize,
    tick: u64,
    entries: Vec<(CacheKey, Arc<Vec<u8>>, u64)>,
}

type CacheKey = (usize, u64, bool);

impl LruCache {
    fn new(capacity: usize) -> LruCache {
        LruCache { capacity: capacity.max(1), tick: 0, entries: Vec::new() }
    }

    fn get(&mut self, key: CacheKey) -> Option<Arc<Vec<u8>>> {
        self.tick += 1;
        let tick = self.tick;
        self.entries.iter_mut().find(|(k, _, _)| *k == key).map(|entry| {
            entry.2 = tick;
            entry.1.clone()
        })
    }

    fn insert(&mut self, key: CacheKey, body: Arc<Vec<u8>>) {
        self.tick += 1;
        if self.entries.len() >= self.capacity {
            if let Some(oldest) =
                self.entries.iter().enumerate().min_by_key(|(_, (_, _, t))| *t).map(|(i, _)| i)
            {
                self.entries.swap_remove(oldest);
            }
        }
        self.entries.push((key, body, self.tick));
    }
}

/// Telemetry handles, resolved once at construction (hot-path rule).
struct Meters {
    requests: Counter,
    bytes_sent: Counter,
    cache_hits: Counter,
    cache_misses: Counter,
    shed: Counter,
    shed_client: Counter,
    shed_global: Counter,
    not_modified: Counter,
    delta_fallback: Counter,
    /// Virtual-time request latency in microseconds — the measurement
    /// of record. Base latency is 1.5 ms, so log2 *millisecond* buckets
    /// crush the whole distribution into two bins; microseconds give the
    /// percentiles real resolution.
    latency_us: Histogram,
    /// Millisecond view derived from the same sample (`us/1000` rounded
    /// up to at least 1), kept for naming-scheme continuity.
    latency_ms: Histogram,
    bytes_saved_delta: Counter,
    bytes_saved_not_modified: Counter,
    /// Per-artifact-kind RED triplets (rate, errors, duration), indexed
    /// by [`ArtifactKind::index`]. Errors are shed + unavailable.
    kind_requests: Vec<Counter>,
    kind_errors: Vec<Counter>,
    kind_latency_us: Vec<Histogram>,
}

impl Meters {
    fn resolve(registry: &Registry) -> Meters {
        let per_kind = |field: &str| -> Vec<Counter> {
            ArtifactKind::ALL
                .iter()
                .map(|k| registry.counter(&format!("serve.kind.{}.{field}", k.file_stem())))
                .collect()
        };
        Meters {
            requests: registry.counter("serve.requests"),
            bytes_sent: registry.counter("serve.bytes_sent"),
            cache_hits: registry.counter("serve.cache.hits"),
            cache_misses: registry.counter("serve.cache.misses"),
            shed: registry.counter("serve.shed"),
            shed_client: registry.counter("serve.shed.client"),
            shed_global: registry.counter("serve.shed.global"),
            not_modified: registry.counter("serve.not_modified"),
            delta_fallback: registry.counter("serve.delta_fallback"),
            latency_us: registry.histogram("serve.latency_us"),
            latency_ms: registry.histogram("serve.latency_ms"),
            bytes_saved_delta: registry.counter("serve.bytes_saved.delta"),
            bytes_saved_not_modified: registry.counter("serve.bytes_saved.not_modified"),
            kind_requests: per_kind("requests"),
            kind_errors: per_kind("errors"),
            kind_latency_us: ArtifactKind::ALL
                .iter()
                .map(|k| registry.histogram(&format!("serve.kind.{}.latency_us", k.file_stem())))
                .collect(),
        }
    }
}

/// One simulated front-end process serving a [`SnapshotStore`].
pub struct Frontend {
    config: FrontendConfig,
    store: Arc<SnapshotStore>,
    cache: LruCache,
    buckets: HashMap<u64, Bucket>,
    /// Completion times of requests currently in flight (min-heap).
    inflight: BinaryHeap<std::cmp::Reverse<u64>>,
    meters: Option<Meters>,
    totals: FrontendTotals,
    /// Always-on virtual-time latency distribution, independent of the
    /// optional registry — [`DayReport`](crate::DayReport) percentiles
    /// come from here.
    latency: Histogram,
    /// Flight recorder fed on the shed path, if attached.
    flight: Option<FlightRecorder>,
}

impl std::fmt::Debug for Frontend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Frontend")
            .field("clients", &self.buckets.len())
            .field("inflight", &self.inflight.len())
            .field("totals", &self.totals)
            .finish()
    }
}

impl Frontend {
    /// Creates a front end over a store.
    ///
    /// # Panics
    ///
    /// On a configuration [`FrontendConfig::validate`] rejects — run the
    /// builder chain through [`FrontendConfig::build`] to handle the
    /// error instead.
    pub fn new(config: FrontendConfig, store: Arc<SnapshotStore>) -> Frontend {
        config.validate().expect("FrontendConfig rejected");
        Frontend {
            cache: LruCache::new(config.cache_capacity),
            config,
            store,
            buckets: HashMap::new(),
            inflight: BinaryHeap::new(),
            meters: None,
            totals: FrontendTotals::default(),
            latency: Histogram::default(),
            flight: None,
        }
    }

    /// Attaches a metrics registry (`serve.requests`, `serve.bytes_sent`,
    /// `serve.cache.{hits,misses}`, `serve.shed{,.client,.global}`,
    /// `serve.not_modified`, `serve.delta_fallback`,
    /// `serve.latency_us`/`serve.latency_ms`,
    /// `serve.bytes_saved.{delta,not_modified}`, and the per-kind RED
    /// triplet `serve.kind.<stem>.{requests,errors,latency_us}`).
    pub fn with_telemetry(mut self, registry: &Registry) -> Frontend {
        self.meters = Some(Meters::resolve(registry));
        self
    }

    /// Attaches a flight recorder: shed decisions are noted into its
    /// event ring, keyed by the virtual hour of day (deterministic —
    /// no wall clock on this path).
    pub fn with_flight(mut self, recorder: FlightRecorder) -> Frontend {
        self.flight = Some(recorder);
        self
    }

    /// The running totals so far.
    pub fn totals(&self) -> &FrontendTotals {
        &self.totals
    }

    /// Snapshot of the virtual-time latency distribution (microseconds)
    /// across every answered request so far.
    pub fn latency_snapshot(&self) -> HistogramSnapshot {
        self.latency.snapshot()
    }

    /// The validated configuration this front end runs under — the
    /// reactor reads the phase latencies (base / render) from here to
    /// schedule per-request state-machine events.
    pub(crate) fn config(&self) -> &FrontendConfig {
        &self.config
    }

    fn admit_client(&mut self, client: u64, now_us: u64) -> bool {
        let burst = u64::from(self.config.client_burst) * 1_000;
        let rate = u64::from(self.config.client_rate_per_min);
        let bucket = self
            .buckets
            .entry(client)
            .or_insert(Bucket { milli_tokens: burst, last_us: 0, carry: 0 });
        let elapsed = now_us.saturating_sub(bucket.last_us);
        bucket.last_us = now_us;
        // rate tokens/minute = rate * 1000 milli-tokens / 60e6 µs: one
        // milli-token per 60_000 µs·rate of accrual. The division's
        // remainder rides in `carry` to the next call, so the refill a
        // client earns depends only on total elapsed time, never on how
        // its arrivals are spaced.
        let accrued = elapsed.saturating_mul(rate).saturating_add(bucket.carry);
        bucket.milli_tokens = bucket.milli_tokens.saturating_add(accrued / 60_000);
        if bucket.milli_tokens >= burst {
            // Clamped at the cap: a full bucket accrues nothing, so the
            // residue is forfeit too (otherwise a long-idle client would
            // bank credit beyond its burst).
            bucket.milli_tokens = burst;
            bucket.carry = 0;
        } else {
            bucket.carry = accrued % 60_000;
        }
        if bucket.milli_tokens >= 1_000 {
            bucket.milli_tokens -= 1_000;
            true
        } else {
            false
        }
    }

    /// Handles one request at its virtual arrival time. Requests must be
    /// fed in non-decreasing `at_us` order (the fleet replay sorts its
    /// schedule); the concurrency window is maintained by retiring every
    /// in-flight request whose completion time has passed.
    pub fn handle(&mut self, request: &Request) -> Outcome {
        let kind = request.kind.index();
        self.totals.requests += 1;
        if let Some(m) = &self.meters {
            m.requests.incr();
            m.kind_requests[kind].incr();
        }
        let now = request.at_us;
        while self.inflight.peek().is_some_and(|done| done.0 <= now) {
            self.inflight.pop();
        }

        // Admission: the client's bucket first (cheapest rejection),
        // then the global in-flight cap.
        if !self.admit_client(request.client, now) {
            self.totals.shed_client += 1;
            if let Some(m) = &self.meters {
                m.shed.incr();
                m.shed_client.incr();
                m.kind_errors[kind].incr();
            }
            self.note_shed(request, "serve.shed.client");
            return Outcome::ShedClient;
        }
        if self.inflight.len() >= self.config.global_concurrency {
            self.totals.shed_global += 1;
            if let Some(m) = &self.meters {
                m.shed.incr();
                m.shed_global.incr();
                m.kind_errors[kind].incr();
            }
            self.note_shed(request, "serve.shed.global");
            return Outcome::ShedGlobal;
        }

        let Some(version) = self.store.artifact(request.kind) else {
            self.totals.unavailable += 1;
            if let Some(m) = &self.meters {
                m.kind_errors[kind].incr();
            }
            return Outcome::Unavailable;
        };

        // Conditional fetch: the ETag is the content digest, so an
        // up-to-date consumer pays one round trip and zero body bytes.
        if request.if_none_match == Some(version.digest()) {
            let latency = self.config.base_latency_us;
            self.finish(now, latency, kind);
            self.totals.not_modified += 1;
            if let Some(m) = &self.meters {
                m.not_modified.incr();
                m.bytes_saved_not_modified.add(version.full_encoded().len() as u64);
            }
            return Outcome::NotModified { round: version.round(), latency_us: latency };
        }

        // Body selection: a delta is only valid on top of the round the
        // store actually diffed against; anything else falls back to the
        // full snapshot (and is accounted, so staleness is visible).
        let mut serve_delta = false;
        let body_src: Arc<Vec<u8>> = match request.fetch {
            FetchKind::DeltaSince(have) => match version.delta_encoded() {
                Some(delta) if version.prev_round() == Some(have) => {
                    serve_delta = true;
                    let saved =
                        (version.full_encoded().len() as u64).saturating_sub(delta.len() as u64);
                    self.totals.bytes_saved_by_delta += saved;
                    if let Some(m) = &self.meters {
                        m.bytes_saved_delta.add(saved);
                    }
                    delta.clone()
                }
                _ => {
                    self.totals.delta_fallbacks += 1;
                    if let Some(m) = &self.meters {
                        m.delta_fallback.incr();
                    }
                    version.full_encoded().clone()
                }
            },
            FetchKind::Full => version.full_encoded().clone(),
        };

        let key: CacheKey = (request.kind.index(), version.round(), serve_delta);
        let (body, cached) = match self.cache.get(key) {
            Some(body) => {
                self.totals.cache_hits += 1;
                if let Some(m) = &self.meters {
                    m.cache_hits.incr();
                }
                (body, true)
            }
            None => {
                self.totals.cache_misses += 1;
                if let Some(m) = &self.meters {
                    m.cache_misses.incr();
                }
                self.cache.insert(key, body_src.clone());
                (body_src, false)
            }
        };

        let bytes = body.len() as u64;
        let mut latency = self.config.base_latency_us + bytes / self.config.bytes_per_us.max(1);
        if !cached {
            latency += self.config.render_latency_us;
        }
        self.finish(now, latency, kind);
        self.totals.bodies += 1;
        self.totals.bytes_sent += bytes;
        if serve_delta {
            self.totals.delta_fetches += 1;
        } else {
            self.totals.full_fetches += 1;
        }
        if let Some(m) = &self.meters {
            m.bytes_sent.add(bytes);
        }
        Outcome::Body {
            bytes,
            round: version.round(),
            digest: version.digest(),
            delta: serve_delta,
            cached,
            latency_us: latency,
        }
    }

    fn finish(&mut self, now_us: u64, latency_us: u64, kind: usize) {
        self.inflight.push(std::cmp::Reverse(now_us + latency_us));
        let us = latency_us.max(1);
        self.latency.record(us);
        if let Some(m) = &self.meters {
            // Microseconds are the measurement of record; the ms view is
            // derived from the same sample so the two always agree.
            m.latency_us.record(us);
            m.kind_latency_us[kind].record(us);
            m.latency_ms.record(latency_us.div_ceil(1_000).max(1));
        }
    }

    fn note_shed(&self, request: &Request, kind: &str) {
        if let Some(flight) = &self.flight {
            flight.note(
                (request.at_us / 3_600_000_000) as u32,
                kind,
                &[
                    ("client", &request.client.to_string()),
                    ("artifact", &request.kind.file_stem()),
                    ("at_us", &request.at_us.to_string()),
                ],
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoreConfig;

    fn served_store() -> Arc<SnapshotStore> {
        let store = SnapshotStore::new(StoreConfig::default());
        let items: sixdust_addr::AddrSet = (0..2000u128).map(|i| i * 31).collect();
        store.publish_round(1, "d1", vec![(ArtifactKind::Responsive, items.clone())]);
        let mut next = items;
        next.insert(1_000_000);
        store.publish_round(2, "d2", vec![(ArtifactKind::Responsive, next)]);
        Arc::new(store)
    }

    fn request(client: u64, at_us: u64) -> Request {
        Request {
            client,
            kind: ArtifactKind::Responsive,
            fetch: FetchKind::Full,
            if_none_match: None,
            at_us,
        }
    }

    #[test]
    fn full_fetch_serves_and_caches() {
        let mut fe = Frontend::new(FrontendConfig::default(), served_store());
        let first = fe.handle(&request(1, 0));
        let Outcome::Body { bytes, cached, round, .. } = first else {
            panic!("expected body, got {first:?}");
        };
        assert!(bytes > 0);
        assert!(!cached);
        assert_eq!(round, 2);
        let second = fe.handle(&request(2, 1_000_000));
        let Outcome::Body { cached, latency_us, .. } = second else { panic!("body") };
        assert!(cached, "second fetch hits the cache");
        assert!(latency_us < fe.config.render_latency_us + fe.config.base_latency_us + 100_000);
        assert_eq!(fe.totals().cache_hits, 1);
        assert_eq!(fe.totals().cache_misses, 1);
    }

    #[test]
    fn etag_match_returns_not_modified() {
        let store = served_store();
        let digest = store.artifact(ArtifactKind::Responsive).unwrap().digest();
        let mut fe = Frontend::new(FrontendConfig::default(), store);
        let mut req = request(1, 0);
        req.if_none_match = Some(digest);
        assert!(matches!(fe.handle(&req), Outcome::NotModified { round: 2, .. }));
        req.if_none_match = Some(digest ^ 1);
        assert!(matches!(fe.handle(&req), Outcome::Body { .. }), "stale etag gets a body");
        assert_eq!(fe.totals().not_modified, 1);
    }

    #[test]
    fn delta_since_prev_round_serves_delta_else_falls_back() {
        let mut fe = Frontend::new(FrontendConfig::default(), served_store());
        let mut req = request(1, 0);
        req.fetch = FetchKind::DeltaSince(1);
        let Outcome::Body { delta, bytes: delta_bytes, .. } = fe.handle(&req) else {
            panic!("body")
        };
        assert!(delta, "holder of round 1 gets the delta");
        req.fetch = FetchKind::DeltaSince(0);
        let Outcome::Body { delta, bytes: full_bytes, .. } = fe.handle(&request(2, 0)) else {
            panic!("body")
        };
        assert!(!delta);
        let out = fe.handle(&Request { client: 3, fetch: FetchKind::DeltaSince(0), ..req });
        let Outcome::Body { delta, .. } = out else { panic!("body") };
        assert!(!delta, "unknown base falls back to full");
        assert_eq!(fe.totals().delta_fallbacks, 1);
        assert!(delta_bytes < full_bytes, "delta is far smaller than full");
    }

    #[test]
    fn client_bucket_sheds_bursts_and_refills() {
        let config = FrontendConfig::builder().with_client_bucket(2, 60);
        let mut fe = Frontend::new(config, served_store());
        assert!(matches!(fe.handle(&request(7, 0)), Outcome::Body { .. }));
        assert!(matches!(fe.handle(&request(7, 1)), Outcome::Body { .. }));
        assert!(matches!(fe.handle(&request(7, 2)), Outcome::ShedClient));
        // 60 tokens/minute = one per second: a token is back after 1s.
        assert!(matches!(fe.handle(&request(7, 1_000_002)), Outcome::Body { .. }));
        assert_eq!(fe.totals().shed_client, 1);
    }

    #[test]
    fn dense_polling_does_not_starve_the_bucket() {
        // Regression: the old refill truncated `elapsed * rate / 60_000`
        // on every call *and* advanced `last_us`, so a rate-60/min
        // client polled every 999 µs (just under the 1000 µs one
        // milli-token needs at rate 60) accrued zero refill forever —
        // it got its burst and then starved. With the carry, refill is
        // exact: one token per second regardless of polling cadence.
        let config = FrontendConfig::builder().with_client_bucket(2, 60);
        let mut fe = Frontend::new(config, served_store());
        let mut admitted = 0u64;
        let polls = 3_003u64; // covers exactly 3.0 s minus one poll
        for k in 0..polls {
            if !matches!(fe.handle(&request(7, k * 999)), Outcome::ShedClient) {
                admitted += 1;
            }
        }
        // Burst of 2, plus one refilled token per elapsed second. The
        // last poll is at 2_999_998 µs < 3 s, so exactly 2 refills.
        assert_eq!(admitted, 2 + 2, "burst + one token per second; old math admits only 2");
    }

    #[test]
    fn refill_total_is_independent_of_arrival_spacing() {
        // Demand-saturated polling at three very different cadences must
        // earn the same refill over the same horizon: total admissions
        // are a function of elapsed time only. (The old math made them a
        // function of spacing: sub-interval cadences earned nothing.)
        let horizon_us = 60_000_000u64; // one virtual minute at rate 60
        let count_at = |spacing_us: u64| {
            // Burst 2 keeps a demand-saturated bucket strictly below its
            // cap after the first request, so nothing is ever forfeited
            // at the clamp and the carry's exactness is fully exposed:
            // admissions = (burst + floor(last_poll_us / 1000)) / 1000
            // milli-tokens, a function of elapsed time alone.
            let config = FrontendConfig::builder().with_client_bucket(2, 60);
            let mut fe = Frontend::new(config, served_store());
            let mut admitted = 0u64;
            let mut t = 0u64;
            while t <= horizon_us {
                if !matches!(fe.handle(&request(3, t)), Outcome::ShedClient) {
                    admitted += 1;
                }
                t += spacing_us;
            }
            admitted
        };
        let dense = count_at(999);
        let sparse = count_at(10_007);
        let coarse = count_at(399_989);
        assert_eq!(dense, 61, "burst 2 + 59.999 tokens refilled over the minute");
        assert_eq!(dense, sparse, "999 µs vs 10 ms spacing must earn identical refill");
        assert_eq!(dense, coarse, "999 µs vs 400 ms spacing must earn identical refill");
    }

    #[test]
    fn idle_clients_do_not_bank_credit_beyond_burst() {
        // A day of idleness refills to the cap and no further: the
        // residue is forfeit at the cap, so the first requests after the
        // idle gap are bounded by the burst (plus what trickles in
        // during them), not by the idle time.
        let config = FrontendConfig::builder().with_client_bucket(2, 60);
        let mut fe = Frontend::new(config, served_store());
        assert!(matches!(fe.handle(&request(9, 0)), Outcome::Body { .. }));
        // 1 token left; a long gap refills to the 2-token cap only.
        let after_gap = 86_400_000_000u64;
        let mut admitted = 0;
        for k in 0..10u64 {
            if !matches!(fe.handle(&request(9, after_gap + k)), Outcome::ShedClient) {
                admitted += 1;
            }
        }
        assert_eq!(admitted, 2, "the cap bounds post-idle credit at the burst");
    }

    #[test]
    fn global_cap_sheds_synchronized_arrivals() {
        let config = FrontendConfig::builder().with_global_concurrency(4);
        let mut fe = Frontend::new(config, served_store());
        let mut shed = 0;
        for client in 0..10u64 {
            // All at the same instant: only `cap` fit in flight.
            match fe.handle(&request(client, 5)) {
                Outcome::ShedGlobal => shed += 1,
                Outcome::Body { .. } => {}
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(shed, 6);
        // Far enough later every in-flight request has drained.
        assert!(matches!(fe.handle(&request(99, 60_000_000)), Outcome::Body { .. }));
        assert_eq!(fe.totals().shed_global, 6);
    }

    #[test]
    fn latency_snapshot_and_byte_savings_accrue() {
        let reg = sixdust_telemetry::Registry::new();
        let store = served_store();
        let digest = store.artifact(ArtifactKind::Responsive).unwrap().digest();
        let mut fe = Frontend::new(FrontendConfig::default(), store).with_telemetry(&reg);
        // A delta fetch on the diffed base saves full-minus-delta bytes.
        let mut req = request(1, 0);
        req.fetch = FetchKind::DeltaSince(1);
        let Outcome::Body { delta: true, bytes: delta_bytes, .. } = fe.handle(&req) else {
            panic!("expected delta body");
        };
        assert!(fe.totals().bytes_saved_by_delta > 0);
        // A 304 saves the entire full body it didn't resend.
        let mut req = request(2, 10);
        req.if_none_match = Some(digest);
        assert!(matches!(fe.handle(&req), Outcome::NotModified { .. }));
        let snap = reg.snapshot();
        assert_eq!(snap.counter("serve.bytes_saved.delta"), Some(fe.totals().bytes_saved_by_delta));
        assert!(snap.counter("serve.bytes_saved.not_modified").unwrap() > delta_bytes);
        // Both answered requests landed in the always-on us histogram
        // and in the per-kind RED duration.
        let latency = fe.latency_snapshot();
        assert_eq!(latency.count, 2);
        assert!(latency.min >= 1_500, "virtual latency floor");
        assert_eq!(snap.histogram("serve.kind.responsive-addresses.latency_us").unwrap().count, 2);
        assert_eq!(snap.counter("serve.kind.responsive-addresses.requests"), Some(2));
    }

    #[test]
    fn shed_paths_feed_the_flight_recorder_and_error_meters() {
        let reg = sixdust_telemetry::Registry::new();
        let flight = sixdust_telemetry::FlightRecorder::new();
        let config = FrontendConfig::builder().with_client_bucket(1, 0);
        let mut fe =
            Frontend::new(config, served_store()).with_telemetry(&reg).with_flight(flight.clone());
        assert!(matches!(fe.handle(&request(7, 0)), Outcome::Body { .. }));
        // Burst exhausted, no refill: the second request is shed and the
        // flight recorder notes it with deterministic virtual-time args.
        assert!(matches!(fe.handle(&request(7, 7_200_000_000)), Outcome::ShedClient));
        flight.capture(2, "test");
        let caps = flight.captures();
        assert_eq!(caps[0].events.len(), 1);
        let e = &caps[0].events[0];
        assert_eq!(e.kind, "serve.shed.client");
        assert_eq!(e.key, 2, "keyed by virtual hour of day");
        assert_eq!(e.args[0], ("client".to_string(), "7".to_string()));
        assert_eq!(reg.snapshot().counter("serve.kind.responsive-addresses.errors"), Some(1));
    }

    #[test]
    fn builder_rejects_pathological_configs() {
        assert_eq!(
            FrontendConfig::builder().with_cache_capacity(0).build(),
            Err(FrontendConfigError::ZeroCacheCapacity)
        );
        assert_eq!(
            FrontendConfig::builder().with_global_concurrency(0).build(),
            Err(FrontendConfigError::ZeroConcurrency)
        );
        assert_eq!(
            FrontendConfig::builder().with_client_bucket(0, 60).build(),
            Err(FrontendConfigError::ZeroClientBurst)
        );
        let mut zero_rate_transfer = FrontendConfig::default();
        zero_rate_transfer.bytes_per_us = 0;
        assert_eq!(zero_rate_transfer.build(), Err(FrontendConfigError::ZeroTransferRate));
        // A zero refill rate with a positive burst is a finite total
        // quota, not a pathology — it must keep building.
        let quota = FrontendConfig::builder().with_client_bucket(1, 0).build().expect("legal");
        assert_eq!((quota.client_burst, quota.client_rate_per_min), (1, 0));
        assert!(FrontendConfig::default().build().is_ok());
    }

    #[test]
    #[should_panic(expected = "FrontendConfig rejected")]
    fn frontend_new_panics_on_invalid_config() {
        let config = FrontendConfig::builder().with_global_concurrency(0);
        let _ = Frontend::new(config, served_store());
    }

    #[test]
    fn empty_store_is_unavailable() {
        let store = Arc::new(SnapshotStore::new(StoreConfig::default()));
        let mut fe = Frontend::new(FrontendConfig::default(), store);
        assert_eq!(fe.handle(&request(1, 0)), Outcome::Unavailable);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut lru = LruCache::new(2);
        lru.insert((0, 0, false), Arc::new(vec![0]));
        lru.insert((1, 0, false), Arc::new(vec![1]));
        assert!(lru.get((0, 0, false)).is_some(), "refresh entry 0");
        lru.insert((2, 0, false), Arc::new(vec![2]));
        assert!(lru.get((1, 0, false)).is_none(), "1 was evicted");
        assert!(lru.get((0, 0, false)).is_some());
        assert!(lru.get((2, 0, false)).is_some());
    }
}
