//! A deterministic simulated fleet of registered hitlist consumers.
//!
//! Every schedule decision — who asks, for what, when, and how fresh
//! their local copy is — is derived from a seed through the same
//! SplitMix-based PRF the rest of the workspace uses, so a day of load
//! replays bit-identically. Artifact popularity follows a Zipf law over
//! [`ArtifactKind::ALL`] (the full responsive list dominates, exotic
//! slices tail off), matching how real hitlist mirrors see traffic.
//!
//! Two load shapes share one replay engine:
//!
//! * **Uniform** (the default): `requests` arrivals spread PRF-uniform
//!   across the day — the original 100k-request replay.
//! * **Sessions** ([`SessionShape`]): each of `clients` virtual clients
//!   runs one session — a heavy-tailed (Zipf) number of requests spaced
//!   by jittered think time — and a configurable slice of sessions joins
//!   a flash crowd at each publication ([`FlashSpike`]), front-loaded
//!   the way real consumers pile onto a fresh hitlist. This is what
//!   scales the day to a million-plus virtual clients.
//!
//! Either shape drives the [`EventLoop`](crate::reactor::EventLoop)
//! front end by default ([`simulate_day`]); [`simulate_day_sync`] is the
//! synchronous reference path the event loop's ledger is pinned
//! byte-identical against.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;

use sixdust_addr::prf::prf_u128;
use sixdust_telemetry::{
    Counter, FlightRecorder, Gauge, Histogram, HistogramSnapshot, Registry, SeriesRecorder,
    SloEngine,
};

use crate::mirror::{MirrorTier, TimedPublish};
use crate::reactor::{Completion, EventLoop};
use crate::server::{FetchKind, Frontend, FrontendConfig, FrontendTotals, Outcome, Request};
use crate::store::{ArtifactKind, SnapshotStore};

const TAG_TIME: u64 = 1;
const TAG_CLIENT: u64 = 2;
const TAG_KIND: u64 = 3;
const TAG_FRESH: u64 = 4;
const TAG_COND: u64 = 5;
const TAG_AFFINITY: u64 = 6;
const TAG_JITTER: u64 = 7;
const TAG_SESSION_LEN: u64 = 8;
const TAG_FLASH: u64 = 9;
const TAG_SPIKE: u64 = 10;
const TAG_THINK: u64 = 11;

/// Fleet configuration.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of distinct registered consumers.
    pub clients: u64,
    /// Requests issued across the day.
    pub requests: u64,
    /// Zipf exponent over artifact popularity ranks (milli-units:
    /// 1000 = classic 1/rank).
    pub zipf_exponent_milli: u32,
    /// PRNG seed; equal seeds replay the identical day.
    pub seed: u64,
    /// Permille of requests from clients holding the round the store
    /// last diffed against (e.g. yesterday's mirror sync); they ask for
    /// a delta on top of it.
    pub one_behind_permille: u32,
    /// Permille of requests sent conditionally (If-None-Match with the
    /// digest the client last saw).
    pub conditional_permille: u32,
    /// Length of the simulated day in virtual microseconds.
    pub day_micros: u64,
    /// Session-based load shape. `None` replays `requests` PRF-uniform
    /// arrivals (the classic day); `Some` generates one session per
    /// client instead — heavy-tailed request counts, think time, and
    /// optional flash-crowd spikes — and `requests` is ignored.
    pub session: Option<SessionShape>,
}

/// One flash-crowd spike: a publication lands at `at_us` and the crowd
/// piles on across the following `window_us`, front-loaded (arrival
/// offsets are drawn quadratically toward the publication instant, the
/// shape a fresh-hitlist announcement produces).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlashSpike {
    /// Publication instant, microseconds into the day.
    pub at_us: u64,
    /// How long the crowd keeps arriving after the publication.
    pub window_us: u64,
}

/// The session-based virtual-client behavior model: how many requests a
/// client makes (heavy-tailed), how it paces them (think time), and
/// which sessions chase publications (flash crowds). Modeled on the
/// virtual-user trafficgen pattern: every client is an independent
/// deterministic "task" whose think-time jitter and request count come
/// from per-client PRF draws.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionShape {
    /// Mean think time between a session's consecutive requests,
    /// microseconds (each gap is drawn uniform in `[1, 2·mean]`).
    pub think_time_us: u64,
    /// Cap on per-client request counts; counts are Zipf-distributed
    /// over `1..=cap`, so most sessions are short and a heavy tail
    /// hammers the service.
    pub max_requests_per_client: u32,
    /// Zipf exponent over session lengths (milli-units, like
    /// [`FleetConfig::zipf_exponent_milli`]).
    pub length_zipf_milli: u32,
    /// Permille of sessions that join a flash crowd (when `spikes` is
    /// non-empty): their session starts inside a spike window instead of
    /// uniformly across the day.
    pub flash_permille: u32,
    /// The day's flash-crowd spikes (typically one per publication).
    pub spikes: Vec<FlashSpike>,
}

impl Default for SessionShape {
    fn default() -> SessionShape {
        SessionShape {
            think_time_us: 120_000_000,
            max_requests_per_client: 64,
            length_zipf_milli: 1_300,
            flash_permille: 400,
            spikes: Vec::new(),
        }
    }
}

impl SessionShape {
    /// Starts from the default shape (2-minute mean think time, Zipf-1.3
    /// session lengths capped at 64, no spikes).
    pub fn builder() -> SessionShape {
        SessionShape::default()
    }

    /// Sets the mean think time.
    pub fn with_think_time_us(mut self, think: u64) -> SessionShape {
        self.think_time_us = think;
        self
    }

    /// Sets the per-client request-count cap.
    pub fn with_max_requests_per_client(mut self, cap: u32) -> SessionShape {
        self.max_requests_per_client = cap;
        self
    }

    /// Adds a flash-crowd spike.
    pub fn with_spike(mut self, at_us: u64, window_us: u64) -> SessionShape {
        self.spikes.push(FlashSpike { at_us, window_us });
        self
    }

    /// Sets the share of sessions that join a flash crowd.
    pub fn with_flash_permille(mut self, permille: u32) -> SessionShape {
        self.flash_permille = permille;
        self
    }
}

impl Default for FleetConfig {
    fn default() -> FleetConfig {
        FleetConfig {
            clients: 500,
            requests: 100_000,
            zipf_exponent_milli: 1_000,
            seed: 0x6D15_7A11,
            one_behind_permille: 350,
            conditional_permille: 250,
            day_micros: 86_400_000_000,
            session: None,
        }
    }
}

/// Why a [`FleetConfig`] failed validation — the same loud-rejection
/// pattern as [`FrontendConfigError`](crate::FrontendConfigError).
/// Each rejected value used to panic deep in the replay (an extreme
/// Zipf exponent overflowing `rank.pow`), loop forever, or silently
/// produce an empty day.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetConfigError {
    /// `clients` is zero: nobody to draw arrivals from.
    ZeroClients,
    /// `requests` is zero in uniform mode: the day would be empty.
    ZeroRequests,
    /// `day_micros` is zero: no timeline to schedule on.
    ZeroDayMicros,
    /// A Zipf exponent so extreme the fixed-point `rank^s` computation
    /// overflows (applies to `zipf_exponent_milli` and to a session's
    /// `length_zipf_milli`).
    ZipfExponentOverflow,
    /// A session's `max_requests_per_client` is zero: every session
    /// would be empty.
    ZeroSessionRequestCap,
    /// A flash spike is scheduled at or past the end of the day.
    FlashSpikeOutsideDay,
}

impl std::fmt::Display for FleetConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetConfigError::ZeroClients => write!(f, "clients must be at least 1"),
            FleetConfigError::ZeroRequests => {
                write!(f, "requests must be at least 1 (uniform mode)")
            }
            FleetConfigError::ZeroDayMicros => write!(f, "day_micros must be at least 1"),
            FleetConfigError::ZipfExponentOverflow => {
                write!(f, "zipf exponent overflows the fixed-point rank^s computation")
            }
            FleetConfigError::ZeroSessionRequestCap => {
                write!(f, "max_requests_per_client must be at least 1")
            }
            FleetConfigError::FlashSpikeOutsideDay => {
                write!(f, "flash spike scheduled at or past the end of the day")
            }
        }
    }
}

impl std::error::Error for FleetConfigError {}

impl FleetConfig {
    /// Starts from the default configuration.
    pub fn builder() -> FleetConfig {
        FleetConfig::default()
    }

    /// Sets the consumer count.
    pub fn with_clients(mut self, clients: u64) -> FleetConfig {
        self.clients = clients.max(1);
        self
    }

    /// Sets the total request count for the day.
    pub fn with_requests(mut self, requests: u64) -> FleetConfig {
        self.requests = requests;
        self
    }

    /// Sets the seed.
    pub fn with_seed(mut self, seed: u64) -> FleetConfig {
        self.seed = seed;
        self
    }

    /// Switches the day to session-based generation.
    pub fn with_session(mut self, session: SessionShape) -> FleetConfig {
        self.session = Some(session);
        self
    }

    /// Checks the configuration without consuming it.
    pub fn validate(&self) -> Result<(), FleetConfigError> {
        if self.clients == 0 {
            return Err(FleetConfigError::ZeroClients);
        }
        if self.day_micros == 0 {
            return Err(FleetConfigError::ZeroDayMicros);
        }
        if zipf_cumulative_checked(ArtifactKind::ALL.len() as u64, self.zipf_exponent_milli)
            .is_none()
        {
            return Err(FleetConfigError::ZipfExponentOverflow);
        }
        match &self.session {
            None => {
                if self.requests == 0 {
                    return Err(FleetConfigError::ZeroRequests);
                }
            }
            Some(shape) => {
                if shape.max_requests_per_client == 0 {
                    return Err(FleetConfigError::ZeroSessionRequestCap);
                }
                if zipf_cumulative_checked(
                    u64::from(shape.max_requests_per_client),
                    shape.length_zipf_milli,
                )
                .is_none()
                {
                    return Err(FleetConfigError::ZipfExponentOverflow);
                }
                if shape.spikes.iter().any(|s| s.at_us >= self.day_micros) {
                    return Err(FleetConfigError::FlashSpikeOutsideDay);
                }
            }
        }
        Ok(())
    }

    /// Finishes the builder chain, rejecting configurations that would
    /// panic or degenerate at replay time.
    pub fn build(self) -> Result<FleetConfig, FleetConfigError> {
        self.validate()?;
        Ok(self)
    }
}

/// The report card of one simulated day, serializable for
/// `--serve-report`.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct DayReport {
    /// Seed the day was generated from.
    pub seed: u64,
    /// Configured consumer count.
    pub clients: u64,
    /// Store round the day was served from.
    pub round: u64,
    /// Front-end totals (requests, bytes, cache, shed, …).
    pub totals: FrontendTotals,
    /// Served bodies per artifact kind, in [`ArtifactKind::ALL`] order.
    pub bodies_by_kind: Vec<(String, u64)>,
    /// Median answered-request latency, virtual microseconds. Zero when
    /// the report predates these fields (`serde(default)`) or no request
    /// was answered.
    #[serde(default)]
    pub latency_p50_us: u64,
    /// 90th-percentile answered-request latency, virtual microseconds.
    #[serde(default)]
    pub latency_p90_us: u64,
    /// 99th-percentile answered-request latency, virtual microseconds.
    #[serde(default)]
    pub latency_p99_us: u64,
    /// Bytes the delta encoding saved across the day (full bodies
    /// replaced minus delta bytes sent).
    #[serde(default)]
    pub bytes_saved_by_delta: u64,
    /// Delta requests that fell back to a full body because the client's
    /// base round was not the store's diff base — degradation made
    /// visible in the replayed-day artifact, not only in telemetry.
    #[serde(default)]
    pub delta_fallbacks: u64,
    /// Requests shed by policy (per-client buckets + the global
    /// concurrency cap).
    #[serde(default)]
    pub shed: u64,
    /// Arrivals that landed inside a flash-crowd window (zero for
    /// uniform days and for reports predating this field).
    #[serde(default)]
    pub flash_arrivals: u64,
    /// Resilience accounting of a mirror-tier chaos day (all zero for a
    /// single-frontend day and for reports predating these fields).
    #[serde(default)]
    pub resilience: ResilienceTotals,
}

/// The resilience ledger of one chaos day: what the retry / hedging /
/// circuit-breaker client path and the mirror sync machinery did.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ResilienceTotals {
    /// Mirrors in the tier.
    pub mirrors: u64,
    /// Logical consumer requests issued (each may take several
    /// attempts).
    pub logical_requests: u64,
    /// Attempts sent to mirrors (primaries + retries + hedges +
    /// half-open probes).
    pub attempts: u64,
    /// Attempts beyond the first for a logical request.
    pub retries: u64,
    /// Attempts routed away from the client's affinity mirror.
    pub failovers: u64,
    /// Hedged second requests issued after the latency threshold.
    pub hedged: u64,
    /// Hedges that beat the primary response.
    pub hedge_wins: u64,
    /// Circuit-breaker transitions into open.
    pub breaker_opened: u64,
    /// Circuit-breaker re-closes out of half-open.
    pub breaker_closed: u64,
    /// Attempts skipped because a mirror's breaker was open.
    pub breaker_skipped: u64,
    /// Attempts that hit a mirror inside an outage window (no answer).
    pub down_attempts: u64,
    /// Requests answered from a generation behind the publish plan
    /// (stale-while-revalidate; also in `serve.mirror.stale_served`).
    pub stale_served: u64,
    /// Stale-triggered revalidation syncs.
    pub revalidations: u64,
    /// Completed mirror generation syncs.
    pub syncs: u64,
    /// Syncs rejected wholesale by checksum-first validation.
    pub sync_rejected: u64,
    /// Logical requests that exhausted every attempt without an answer
    /// or a policy shed — the hard failures a resilient tier must keep
    /// at zero.
    pub hard_failures: u64,
}

/// Zipf cumulative weights over `n` popularity ranks, in integer
/// weights so the draw is exact and portable. Returns `None` when the
/// exponent overflows the fixed-point `rank^s` computation or every
/// weight rounds to zero — [`FleetConfig::validate`] surfaces that as
/// [`FleetConfigError::ZipfExponentOverflow`] instead of panicking
/// mid-replay.
fn zipf_cumulative_checked(n: u64, exponent_milli: u32) -> Option<Vec<u64>> {
    let mut acc = 0u64;
    let mut cumulative = Vec::with_capacity(usize::try_from(n).ok()?);
    let s = exponent_milli;
    let frac = u128::from(s % 1000);
    for rank in 1..=n {
        // weight = 1 / rank^s with s in milli-units, computed as a
        // fixed-point power: rank^s = exp2(s * log2(rank)). Integer
        // approximation: interpolate between the two nearest integer
        // exponents, which is exact at s = 0 and s = 1000 (the default).
        let lo = rank.checked_pow(s / 1000)?;
        let hi = lo.checked_mul(rank)?;
        let denom_milli = u128::from(lo)
            .checked_mul(1000 - frac)
            .and_then(|l| l.checked_add(u128::from(hi).checked_mul(frac)?))?;
        // weight in parts-per-million of the rank-1 weight; deep ranks
        // of a steep law may round to zero (they are simply never drawn).
        let weight = u64::try_from(1_000_000_000u128 / denom_milli.max(1)).ok()?;
        acc = acc.checked_add(weight)?;
        cumulative.push(acc);
    }
    (acc > 0).then_some(cumulative)
}

/// The artifact-kind popularity table; infallible once the config passed
/// [`FleetConfig::validate`].
fn zipf_cumulative(exponent_milli: u32) -> Vec<u64> {
    zipf_cumulative_checked(ArtifactKind::ALL.len() as u64, exponent_milli)
        .expect("FleetConfig rejected: zipf exponent overflows")
}

/// Exact weighted draw from a cumulative table: the 64-bit draw is
/// scaled onto `[0, total)` with a 128-bit widening multiply, so every
/// slot gets a share of the draw space proportional to its weight (to
/// within one part in 2^64). The previous `draw % total` biased the
/// point toward low values whenever `total` did not divide 2^64 —
/// systematically over-serving the Zipf head.
fn pick_weighted(cumulative: &[u64], draw: u64) -> usize {
    let total = *cumulative.last().expect("non-empty weight table");
    let point = ((u128::from(draw) * u128::from(total)) >> 64) as u64;
    cumulative.iter().position(|&c| point < c).unwrap_or(cumulative.len() - 1)
}

fn pick_kind(cumulative: &[u64], draw: u64) -> ArtifactKind {
    ArtifactKind::ALL[pick_weighted(cumulative, draw)]
}

/// What each (client, kind) pair remembers between requests: the
/// content digest of the copy it last downloaded (its ETag). Updated
/// when the transfer *completes* — a client cannot revalidate against a
/// digest still on the wire.
#[derive(Debug, Clone, Copy)]
struct Held {
    digest: u64,
}

/// One scheduled arrival of the day, after the load shape has been
/// expanded: request `id` from `client` at `at_us`.
#[derive(Debug, Clone, Copy)]
struct Arrival {
    at_us: u64,
    id: u64,
    client: u64,
}

/// Expands the configured load shape into the day's arrival schedule,
/// sorted by `(time, id)` so replay order is total and independent of
/// generation order. Returns the schedule and the number of arrivals
/// that landed inside a flash-crowd window.
fn build_schedule(config: &FleetConfig) -> (Vec<Arrival>, u64) {
    let day = config.day_micros.max(1);
    let mut flash_arrivals = 0u64;
    let mut schedule: Vec<Arrival> = match &config.session {
        None => (0..config.requests)
            .map(|i| {
                let at = prf_u128(config.seed, u128::from(i), TAG_TIME) % day;
                let client = prf_u128(config.seed, u128::from(i), TAG_CLIENT)
                    % config.clients.max(1);
                Arrival { at_us: at, id: i, client }
            })
            .collect(),
        Some(shape) => {
            let lengths = zipf_cumulative_checked(
                u64::from(shape.max_requests_per_client),
                shape.length_zipf_milli,
            )
            .expect("FleetConfig rejected: session zipf exponent overflows");
            let mut arrivals = Vec::with_capacity(config.clients as usize * 2);
            let mut id = 0u64;
            for client in 0..config.clients {
                // Heavy-tailed session length: rank 1 (one request)
                // dominates, a Zipf tail of long sessions hammers on.
                let len_draw = prf_u128(config.seed, u128::from(client), TAG_SESSION_LEN);
                let count = 1 + pick_weighted(&lengths, len_draw) as u64;
                // Flash crowd: a slice of sessions starts inside a spike
                // window, offset quadratically toward the publication
                // instant (d²/w front-loads small offsets).
                let spike = (!shape.spikes.is_empty()
                    && prf_u128(config.seed, u128::from(client), TAG_FLASH) % 1000
                        < u64::from(shape.flash_permille))
                .then(|| {
                    let pick = prf_u128(config.seed, u128::from(client), TAG_SPIKE)
                        % shape.spikes.len() as u64;
                    shape.spikes[pick as usize]
                });
                let mut at = match spike {
                    Some(s) => {
                        let w = s.window_us.max(1);
                        let d = prf_u128(config.seed, u128::from(client), TAG_TIME) % w;
                        s.at_us + (u128::from(d) * u128::from(d) / u128::from(w)) as u64
                    }
                    None => prf_u128(config.seed, u128::from(client), TAG_TIME) % day,
                };
                for r in 0..count {
                    if at >= day {
                        // The session is truncated at midnight.
                        break;
                    }
                    arrivals.push(Arrival { at_us: at, id, client });
                    id += 1;
                    if let Some(s) = spike {
                        if at >= s.at_us && at < s.at_us.saturating_add(s.window_us) {
                            flash_arrivals += 1;
                        }
                    }
                    let think = prf_u128(
                        config.seed,
                        u128::from(client) << 32 | u128::from(r),
                        TAG_THINK,
                    ) % (2 * shape.think_time_us).max(1);
                    at = at.saturating_add(1 + think);
                }
            }
            arrivals
        }
    };
    schedule.sort_unstable_by_key(|a| (a.at_us, a.id));
    (schedule, flash_arrivals)
}

/// The per-request PRF draws shared by every replay path: which
/// artifact, delta-vs-full freshness, and conditional revalidation.
fn draw_request(
    config: &FleetConfig,
    cumulative: &[u64],
    prev_rounds: &[Option<u64>],
    held: &HashMap<(u64, usize), Held>,
    arrival: Arrival,
) -> Request {
    let i = arrival.id;
    let kind = pick_kind(cumulative, prf_u128(config.seed, u128::from(i), TAG_KIND));
    let state = held.get(&(arrival.client, kind.index())).copied();

    // Freshness: a slice of the fleet holds the store's previous
    // round (yesterday's sync) and asks for a delta on top of it;
    // everyone else asks for the full snapshot. Knowingly-stale
    // consumers do not send an ETag; up-to-date ones (with a body
    // fetched earlier today) conditionally revalidate instead.
    let fresh_draw = prf_u128(config.seed, u128::from(i), TAG_FRESH) % 1000;
    let one_behind = fresh_draw < u64::from(config.one_behind_permille);
    let fetch = match prev_rounds[kind.index()] {
        Some(prev) if one_behind => FetchKind::DeltaSince(prev),
        _ => FetchKind::Full,
    };
    let cond_draw = prf_u128(config.seed, u128::from(i), TAG_COND) % 1000;
    let if_none_match = match state {
        Some(h) if !one_behind && cond_draw < u64::from(config.conditional_permille) => {
            Some(h.digest)
        }
        _ => None,
    };
    Request { client: arrival.client, kind, fetch, if_none_match, at_us: arrival.at_us }
}

/// A completion queued by the synchronous comparator engine, ordered by
/// `(retire time, submission order)` — the same total order the event
/// loop delivers in.
struct PendingCompletion {
    at_us: u64,
    seq: u64,
    completion: Completion,
}

impl PartialEq for PendingCompletion {
    fn eq(&self, other: &PendingCompletion) -> bool {
        (self.at_us, self.seq) == (other.at_us, other.seq)
    }
}

impl Eq for PendingCompletion {}

impl PartialOrd for PendingCompletion {
    fn partial_cmp(&self, other: &PendingCompletion) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for PendingCompletion {
    fn cmp(&self, other: &PendingCompletion) -> std::cmp::Ordering {
        (self.at_us, self.seq).cmp(&(other.at_us, other.seq))
    }
}

/// The two replay engines behind one driver: the event-loop reactor and
/// the synchronous reference path. Both call the same `Frontend::handle`
/// at the same instants and deliver completions in the same total
/// order, which is what pins their ledgers byte-identical.
enum Engine<'a> {
    Reactor(EventLoop<'a>),
    Sync {
        frontend: &'a mut Frontend,
        pending: BinaryHeap<Reverse<PendingCompletion>>,
        seq: u64,
    },
}

impl Engine<'_> {
    fn serve(&mut self, id: u64, request: &Request) {
        match self {
            Engine::Reactor(el) => el.submit(id, request),
            Engine::Sync { frontend, pending, seq } => {
                let outcome = frontend.handle(request);
                let latency = match &outcome {
                    Outcome::Body { latency_us, .. } | Outcome::NotModified { latency_us, .. } => {
                        *latency_us
                    }
                    _ => 0,
                };
                let at_us = request.at_us.saturating_add(latency);
                *seq += 1;
                pending.push(Reverse(PendingCompletion {
                    at_us,
                    seq: *seq,
                    completion: Completion {
                        id,
                        client: request.client,
                        kind: request.kind,
                        at_us,
                        outcome,
                    },
                }));
            }
        }
    }

    fn poll(&mut self, until_us: u64) -> Vec<Completion> {
        match self {
            Engine::Reactor(el) => el.poll(until_us),
            Engine::Sync { pending, .. } => {
                let mut done = Vec::new();
                while pending.peek().is_some_and(|Reverse(p)| p.at_us <= until_us) {
                    done.push(pending.pop().expect("peeked").0.completion);
                }
                done
            }
        }
    }

    fn finish(&mut self) -> Vec<Completion> {
        self.poll(u64::MAX)
    }

    fn totals(&self) -> FrontendTotals {
        match self {
            Engine::Reactor(el) => el.frontend().totals().clone(),
            Engine::Sync { frontend, .. } => frontend.totals().clone(),
        }
    }

    fn latency(&self) -> HistogramSnapshot {
        match self {
            Engine::Reactor(el) => el.frontend().latency_snapshot(),
            Engine::Sync { frontend, .. } => frontend.latency_snapshot(),
        }
    }
}

/// The shared day driver: expand the schedule, and for each arrival
/// first apply every completion whose transfer has finished (updating
/// client-held ETags), then draw and serve the request.
fn drive_day(config: &FleetConfig, mut engine: Engine<'_>, store: &SnapshotStore) -> DayReport {
    config.validate().expect("FleetConfig rejected");
    let cumulative = zipf_cumulative(config.zipf_exponent_milli);
    let current_round = store.current_round().unwrap_or(0);
    // The round each artifact's delta was diffed against, fixed at day
    // start: the base a one-behind consumer holds.
    let prev_rounds: Vec<Option<u64>> =
        ArtifactKind::ALL.iter().map(|&k| store.artifact(k).and_then(|v| v.prev_round())).collect();
    let (schedule, flash_arrivals) = build_schedule(config);

    let mut held: HashMap<(u64, usize), Held> = HashMap::new();
    let mut bodies_by_kind = vec![0u64; ArtifactKind::ALL.len()];
    let apply = |c: Completion,
                     held: &mut HashMap<(u64, usize), Held>,
                     bodies_by_kind: &mut Vec<u64>| {
        if let Outcome::Body { digest, .. } = c.outcome {
            bodies_by_kind[c.kind.index()] += 1;
            held.insert((c.client, c.kind.index()), Held { digest });
        }
    };

    for &arrival in &schedule {
        for c in engine.poll(arrival.at_us) {
            apply(c, &mut held, &mut bodies_by_kind);
        }
        let request = draw_request(config, &cumulative, &prev_rounds, &held, arrival);
        engine.serve(arrival.id, &request);
    }
    for c in engine.finish() {
        apply(c, &mut held, &mut bodies_by_kind);
    }

    let totals = engine.totals();
    let latency = engine.latency();
    DayReport {
        seed: config.seed,
        clients: config.clients,
        round: current_round,
        bytes_saved_by_delta: totals.bytes_saved_by_delta,
        delta_fallbacks: totals.delta_fallbacks,
        shed: totals.shed_client + totals.shed_global,
        flash_arrivals,
        resilience: ResilienceTotals::default(),
        totals,
        bodies_by_kind: ArtifactKind::ALL
            .iter()
            .zip(bodies_by_kind)
            .map(|(kind, n)| (kind.file_stem(), n))
            .collect(),
        latency_p50_us: latency.p50(),
        latency_p90_us: latency.p90(),
        latency_p99_us: latency.p99(),
    }
}

/// Drives one simulated day of fleet load through the event-loop
/// reactor and returns the report. Deterministic for a fixed
/// (config, store state).
///
/// # Panics
///
/// On a configuration [`FleetConfig::validate`] rejects — run the
/// builder chain through [`FleetConfig::build`] to handle the error
/// instead.
pub fn simulate_day(
    config: &FleetConfig,
    frontend: &mut Frontend,
    store: &SnapshotStore,
) -> DayReport {
    simulate_day_reactor(config, frontend, store, None)
}

/// [`simulate_day`] with the reactor's `serve.loop.*` meters attached.
fn simulate_day_reactor(
    config: &FleetConfig,
    frontend: &mut Frontend,
    store: &SnapshotStore,
    registry: Option<&Registry>,
) -> DayReport {
    let mut el = EventLoop::new(frontend);
    if let Some(registry) = registry {
        el = el.with_telemetry(registry);
    }
    drive_day(config, Engine::Reactor(el), store)
}

/// The synchronous reference path: one request runs admit → render →
/// transfer to completion inline, with held-state completions queued
/// arithmetically. Exists to pin the event loop's ledger — the two must
/// produce byte-identical [`DayReport`]s at matched config.
pub fn simulate_day_sync(
    config: &FleetConfig,
    frontend: &mut Frontend,
    store: &SnapshotStore,
) -> DayReport {
    drive_day(config, Engine::Sync { frontend, pending: BinaryHeap::new(), seq: 0 }, store)
}

/// Convenience wrapper: build a front end over `store` with `frontend`
/// config (telemetry optional) and replay one day of `fleet` load.
pub fn run_day(
    fleet: &FleetConfig,
    frontend: FrontendConfig,
    store: &Arc<SnapshotStore>,
    telemetry: Option<&sixdust_telemetry::Registry>,
) -> DayReport {
    run_day_observed(fleet, frontend, store, telemetry, None)
}

/// Like [`run_day`], but additionally attaches a black-box flight
/// recorder: every shed decision the front end makes lands in the
/// recorder's event ring (keyed by virtual hour), available to captures.
pub fn run_day_observed(
    fleet: &FleetConfig,
    frontend: FrontendConfig,
    store: &Arc<SnapshotStore>,
    telemetry: Option<&sixdust_telemetry::Registry>,
    flight: Option<&sixdust_telemetry::FlightRecorder>,
) -> DayReport {
    let mut fe = Frontend::new(frontend, store.clone());
    if let Some(registry) = telemetry {
        fe = fe.with_telemetry(registry);
    }
    if let Some(recorder) = flight {
        fe = fe.with_flight(recorder.clone());
    }
    simulate_day_reactor(fleet, &mut fe, store, telemetry)
}

/// Deterministic retry policy of the resilient client path: exponential
/// backoff with seeded jitter, and a hedging threshold after which a
/// second request races the slow primary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Attempt budget per logical request (primary + retries; hedges and
    /// breaker-skipped mirrors do not consume it).
    pub max_attempts: u32,
    /// Backoff before retry `n` is `base << (n-1)`, capped.
    pub backoff_base_us: u64,
    /// Upper bound on a single backoff.
    pub backoff_cap_us: u64,
    /// Jitter span in permille of the backoff: the drawn backoff is
    /// uniform in `[b - b*j/1000, b + b*j/1000]`, seeded per
    /// (request, retry) so the day replays byte-identically.
    pub jitter_permille: u32,
    /// Serve latency above which a hedged second request is sent to the
    /// next healthy mirror; the client takes whichever answer is
    /// effectively earlier.
    pub hedge_after_us: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 5,
            backoff_base_us: 50_000,
            backoff_cap_us: 2_000_000,
            jitter_permille: 250,
            hedge_after_us: 15_000,
        }
    }
}

/// Per-mirror circuit-breaker policy (closed → open → half-open).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive health failures (mirror down / nothing published)
    /// that trip the breaker open. Load sheds are *not* health failures.
    pub failure_threshold: u32,
    /// How long an open breaker skips its mirror before letting
    /// half-open probe requests through, virtual microseconds.
    pub open_cooldown_us: u64,
    /// Successful half-open probes required to re-close.
    pub half_open_probes: u32,
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig { failure_threshold: 3, open_cooldown_us: 600_000_000, half_open_probes: 2 }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BreakerState {
    Closed,
    Open { until_us: u64 },
    HalfOpen { successes: u32 },
}

/// One mirror's client-side circuit breaker, driven on virtual time.
#[derive(Debug, Clone, Copy)]
struct Breaker {
    state: BreakerState,
    consecutive_failures: u32,
}

enum BreakerGate {
    /// Closed: attempt freely.
    Allowed,
    /// Half-open: this attempt is a probe.
    Probe,
    /// Open: skip this mirror.
    Skipped,
}

impl Breaker {
    fn new() -> Breaker {
        Breaker { state: BreakerState::Closed, consecutive_failures: 0 }
    }

    /// Whether the breaker is currently engaged (open or half-open) —
    /// the level the `serve.breaker.open` gauge reports.
    fn engaged(&self) -> bool {
        !matches!(self.state, BreakerState::Closed)
    }

    fn gate(&mut self, at_us: u64) -> BreakerGate {
        match self.state {
            BreakerState::Closed => BreakerGate::Allowed,
            BreakerState::Open { until_us } if at_us >= until_us => {
                self.state = BreakerState::HalfOpen { successes: 0 };
                BreakerGate::Probe
            }
            BreakerState::Open { .. } => BreakerGate::Skipped,
            BreakerState::HalfOpen { .. } => BreakerGate::Probe,
        }
    }

    /// Returns whether this success re-closed a half-open breaker.
    fn on_success(&mut self, config: &BreakerConfig) -> bool {
        match self.state {
            BreakerState::Closed => {
                self.consecutive_failures = 0;
                false
            }
            BreakerState::HalfOpen { successes } => {
                let successes = successes + 1;
                if successes >= config.half_open_probes {
                    self.state = BreakerState::Closed;
                    self.consecutive_failures = 0;
                    true
                } else {
                    self.state = BreakerState::HalfOpen { successes };
                    false
                }
            }
            BreakerState::Open { .. } => false,
        }
    }

    /// Returns whether this failure tripped the breaker open.
    fn on_failure(&mut self, at_us: u64, config: &BreakerConfig) -> bool {
        match self.state {
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= config.failure_threshold {
                    self.state = BreakerState::Open { until_us: at_us + config.open_cooldown_us };
                    true
                } else {
                    false
                }
            }
            BreakerState::HalfOpen { .. } => {
                self.state = BreakerState::Open { until_us: at_us + config.open_cooldown_us };
                true
            }
            BreakerState::Open { .. } => false,
        }
    }
}

/// Configuration of one chaos day: the fleet plus the client-side
/// resilience policies.
#[derive(Debug, Clone, Default)]
pub struct ChaosDayConfig {
    /// The consumer fleet (same knobs as a single-frontend day).
    pub fleet: FleetConfig,
    /// Retry / backoff / hedging policy.
    pub retry: RetryPolicy,
    /// Per-mirror circuit-breaker policy.
    pub breaker: BreakerConfig,
}

impl ChaosDayConfig {
    /// Starts from the default configuration.
    pub fn builder() -> ChaosDayConfig {
        ChaosDayConfig::default()
    }

    /// Sets the fleet configuration.
    pub fn with_fleet(mut self, fleet: FleetConfig) -> ChaosDayConfig {
        self.fleet = fleet;
        self
    }

    /// Sets the retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> ChaosDayConfig {
        self.retry = retry;
        self
    }

    /// Sets the breaker policy.
    pub fn with_breaker(mut self, breaker: BreakerConfig) -> ChaosDayConfig {
        self.breaker = breaker;
        self
    }
}

/// The observability sidecar of a chaos day: a shared registry, hourly
/// series rounds, the standard SLO set (publish-freshness burns under an
/// origin blackout, mirror-availability under outages) and a flight
/// recorder that freezes a capture at blackout onset and at each SLO
/// breach onset.
pub struct ChaosObserver {
    registry: Registry,
    recorder: SeriesRecorder,
    slo: SloEngine,
    flight: FlightRecorder,
    staleness_gauge: Gauge,
    last_hour: Option<u32>,
}

impl ChaosObserver {
    /// Builds the sidecar over `registry` (attach the same registry to
    /// the tier via [`MirrorTier::with_telemetry`] so the SLO columns
    /// exist).
    pub fn new(registry: Registry) -> ChaosObserver {
        let recorder = SeriesRecorder::new(registry.clone(), 32);
        let slo = SloEngine::standard().with_registry(&registry);
        let staleness_gauge = registry.gauge("service.publish.staleness_rounds");
        ChaosObserver {
            registry,
            recorder,
            slo,
            flight: FlightRecorder::new(),
            staleness_gauge,
            last_hour: None,
        }
    }

    /// The shared registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The flight recorder (captures frozen at incident onsets).
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// The SLO engine (burn rates, breach log).
    pub fn slo(&self) -> &SloEngine {
        &self.slo
    }

    /// The hourly series rounds recorded across the day.
    pub fn recorder(&self) -> &SeriesRecorder {
        &self.recorder
    }

    fn tick(&mut self, hour: u32) {
        if self.last_hour == Some(hour) {
            return;
        }
        self.last_hour = Some(hour);
        let round = self.recorder.record(hour).clone();
        self.flight.note_round(&round);
        for breach in self.slo.observe(&round) {
            self.flight.note(
                hour,
                "slo.breach",
                &[("slo", &breach.slo), ("bad_permille", &breach.bad_permille.to_string())],
            );
            if breach.onset {
                self.flight.capture(hour, &format!("slo:{}", breach.slo));
            }
        }
    }
}

/// Telemetry handles of the resilient client path, resolved once.
struct RetryMeters {
    attempts: Counter,
    retries: Counter,
    failovers: Counter,
    hedged: Counter,
    hedge_wins: Counter,
    exhausted: Counter,
    down_attempts: Counter,
    backoff_us: Histogram,
    breaker_opened: Counter,
    breaker_closed: Counter,
    breaker_skipped: Counter,
    breaker_probes: Counter,
    breaker_open_gauge: Gauge,
}

impl RetryMeters {
    fn resolve(registry: &Registry) -> RetryMeters {
        RetryMeters {
            attempts: registry.counter("serve.retry.attempts"),
            retries: registry.counter("serve.retry.retries"),
            failovers: registry.counter("serve.retry.failovers"),
            hedged: registry.counter("serve.retry.hedged"),
            hedge_wins: registry.counter("serve.retry.hedge_wins"),
            exhausted: registry.counter("serve.retry.exhausted"),
            down_attempts: registry.counter("serve.mirror.down_attempts"),
            backoff_us: registry.histogram("serve.retry.backoff_us"),
            breaker_opened: registry.counter("serve.breaker.opened"),
            breaker_closed: registry.counter("serve.breaker.closed"),
            breaker_skipped: registry.counter("serve.breaker.skipped"),
            breaker_probes: registry.counter("serve.breaker.probes"),
            breaker_open_gauge: registry.gauge("serve.breaker.open"),
        }
    }
}

/// The seeded backoff before retry `retry_no` (1-based) of request
/// `request`: exponential in the retry number, jittered by a PRF draw so
/// equal seeds replay identical delays.
fn backoff_us(policy: &RetryPolicy, seed: u64, request: u64, retry_no: u32) -> u64 {
    let exp = retry_no.saturating_sub(1).min(20);
    let base = policy.backoff_base_us.saturating_mul(1u64 << exp).min(policy.backoff_cap_us);
    let jitter = base * u64::from(policy.jitter_permille.min(1_000)) / 1_000;
    if jitter == 0 {
        return base;
    }
    let draw = prf_u128(seed, u128::from(request) << 8 | u128::from(retry_no), TAG_JITTER)
        % (2 * jitter + 1);
    base - jitter + draw
}

/// What each (client, kind) pair remembers across a chaos day: the round
/// and digest of the copy it last downloaded.
#[derive(Debug, Clone, Copy)]
struct HeldGeneration {
    round: u64,
    digest: u64,
}

/// Replays one day of fleet load against a [`MirrorTier`] through the
/// resilient client path: per-client mirror affinity, failover to the
/// next healthy mirror, deterministic retries with exponential backoff
/// and seeded jitter, hedged second requests past a latency threshold,
/// and per-mirror circuit breakers. `plan` is the day's scheduled
/// publishes; entries falling inside an origin blackout are deferred
/// until the window lifts while the target round (and hence staleness
/// accounting) advances on schedule.
///
/// Latency percentiles in the returned report are *client-observed*:
/// served latency plus accumulated backoff, with hedges taking
/// `min(primary, hedge_after + hedge)`. Deterministic for a fixed
/// (config, tier construction, plan) — byte-identical reports across
/// runs at the same seed.
pub fn run_chaos_day(
    config: &ChaosDayConfig,
    tier: &mut MirrorTier,
    plan: &[TimedPublish],
    mut observer: Option<&mut ChaosObserver>,
) -> DayReport {
    let fleet = &config.fleet;
    fleet.validate().expect("FleetConfig rejected");
    let mirrors = tier.mirror_count();
    let cumulative = zipf_cumulative(fleet.zipf_exponent_milli);
    let meters = observer.as_ref().map(|o| RetryMeters::resolve(o.registry()));

    // Publish plan, time-ordered; deferred entries wait out the blackout.
    let mut ordered: Vec<&TimedPublish> = plan.iter().collect();
    ordered.sort_by_key(|p| (p.at_us, p.round));
    let mut next_publish = 0usize;
    let mut pending: Vec<&TimedPublish> = Vec::new();

    let (schedule, flash_arrivals) = build_schedule(fleet);

    let mut held: HashMap<(u64, usize), HeldGeneration> = HashMap::new();
    // Transfers in flight: the client learns (round, digest) only when
    // the transfer completes at `at + latency + penalty`, ordered by
    // (retire time, submission order) like the event loop's heap.
    let mut inflight: BinaryHeap<Reverse<(u64, u64, u64, usize, u64, u64)>> = BinaryHeap::new();
    let mut inflight_seq = 0u64;
    let mut breakers = vec![Breaker::new(); mirrors];
    let mut bodies_by_kind = vec![0u64; ArtifactKind::ALL.len()];
    let latency = Histogram::default();
    let mut res = ResilienceTotals {
        mirrors: mirrors as u64,
        logical_requests: schedule.len() as u64,
        ..ResilienceTotals::default()
    };
    let mut was_blackout = false;

    for &Arrival { at_us: at, id: i, client } in &schedule {
        // Deliver every transfer that finished before this arrival.
        while inflight.peek().is_some_and(|Reverse(c)| c.0 <= at) {
            let Reverse((_, _, hclient, kidx, round, digest)) =
                inflight.pop().expect("peeked");
            held.insert((hclient, kidx), HeldGeneration { round, digest });
        }
        // Land every publish that has come due (or been unblocked).
        while next_publish < ordered.len() && ordered[next_publish].at_us <= at {
            let p = ordered[next_publish];
            next_publish += 1;
            if !tier.apply_publish(p.at_us, p) {
                pending.push(p);
            }
        }
        if !pending.is_empty() && !tier.faults().origin_blackout(at) {
            pending.retain(|p| !tier.apply_publish(at, p));
        }

        let hour = (at / 3_600_000_000) as u32;
        let now_blackout = tier.faults().origin_blackout(at);
        if let Some(o) = observer.as_deref_mut() {
            o.staleness_gauge.set(tier.staleness_rounds() as i64);
            if now_blackout && !was_blackout {
                o.flight.note(hour, "serve.origin.blackout", &[("at_us", &at.to_string())]);
                o.flight.capture(hour, "origin-blackout");
            }
            o.tick(hour);
        }
        was_blackout = now_blackout;

        // The logical request (same PRF draws as a single-frontend day).
        let kind = pick_kind(&cumulative, prf_u128(fleet.seed, u128::from(i), TAG_KIND));
        let state = held.get(&(client, kind.index())).copied();
        let fresh_draw = prf_u128(fleet.seed, u128::from(i), TAG_FRESH) % 1000;
        let one_behind = fresh_draw < u64::from(fleet.one_behind_permille);
        let fetch = match state {
            Some(h) if one_behind => FetchKind::DeltaSince(h.round),
            _ => FetchKind::Full,
        };
        // Against a mirror tier every holder revalidates: the mirror's
        // generation may lag the one the client fetched elsewhere, and
        // the ETag check is what keeps that cheap (304 when unchanged).
        let if_none_match = state.map(|h| h.digest);
        let request = Request { client, kind, fetch, if_none_match, at_us: at };

        // Affinity + failover walk with retry budget and breakers.
        let preferred =
            (prf_u128(fleet.seed, u128::from(client), TAG_AFFINITY) % mirrors as u64) as usize;
        let mut attempts_used = 0u32;
        let mut penalty_us = 0u64;
        let mut winner: Option<(usize, Outcome)> = None;
        let mut policy_shed = false;
        let mut saw_global_shed = false;
        let mut iter = 0usize;
        let max_iter = config.retry.max_attempts as usize + mirrors;
        while attempts_used < config.retry.max_attempts && iter < max_iter {
            let m = (preferred + iter) % mirrors;
            iter += 1;
            match breakers[m].gate(at) {
                BreakerGate::Skipped => {
                    // Fail open on the final iteration of an all-skipped
                    // walk: when every mirror's breaker is open, honoring
                    // the skip would turn a partial outage into a total
                    // one — attempt anyway rather than hard-fail.
                    if iter < max_iter || attempts_used > 0 {
                        res.breaker_skipped += 1;
                        if let Some(mt) = &meters {
                            mt.breaker_skipped.incr();
                        }
                        continue;
                    }
                }
                BreakerGate::Probe => {
                    if let Some(mt) = &meters {
                        mt.breaker_probes.incr();
                    }
                    // An expired open window moving to half-open frees
                    // the gauge only on re-close; track opens below.
                }
                BreakerGate::Allowed => {}
            }
            attempts_used += 1;
            res.attempts += 1;
            if let Some(mt) = &meters {
                mt.attempts.incr();
            }
            if attempts_used >= 2 {
                res.retries += 1;
                let b = backoff_us(&config.retry, fleet.seed, i, attempts_used - 1);
                penalty_us += b;
                if let Some(mt) = &meters {
                    mt.retries.incr();
                    mt.backoff_us.record(b.max(1));
                }
            }
            if m != preferred {
                res.failovers += 1;
                if let Some(mt) = &meters {
                    mt.failovers.incr();
                }
            }
            match tier.handle(m, &request) {
                None => {
                    res.down_attempts += 1;
                    if let Some(mt) = &meters {
                        mt.down_attempts.incr();
                    }
                    if breakers[m].on_failure(at, &config.breaker) {
                        res.breaker_opened += 1;
                        if let Some(mt) = &meters {
                            mt.breaker_opened.incr();
                        }
                    }
                }
                Some(Outcome::Unavailable) => {
                    if breakers[m].on_failure(at, &config.breaker) {
                        res.breaker_opened += 1;
                        if let Some(mt) = &meters {
                            mt.breaker_opened.incr();
                        }
                    }
                }
                Some(Outcome::ShedClient) => {
                    // A quota rejection is an answer, not a health
                    // signal; retrying it elsewhere would evade policy.
                    policy_shed = true;
                    break;
                }
                Some(Outcome::ShedGlobal) => {
                    // Overload: fail over, but an overloaded mirror is
                    // not an unhealthy mirror — no breaker penalty.
                    saw_global_shed = true;
                }
                Some(outcome) => {
                    if breakers[m].on_success(&config.breaker) {
                        res.breaker_closed += 1;
                        if let Some(mt) = &meters {
                            mt.breaker_closed.incr();
                        }
                    }
                    winner = Some((m, outcome));
                    break;
                }
            }
        }

        // Hedging: a slow (but successful) primary races one more
        // request on the next breaker-admitted mirror; the adopted
        // outcome carries the client-observed latency
        // `hedge_after + hedge serve time`.
        let primary = winner.as_ref().map(|(m, outcome)| {
            let lat = match outcome {
                Outcome::Body { latency_us, .. } | Outcome::NotModified { latency_us, .. } => {
                    *latency_us
                }
                _ => 0,
            };
            (*m, lat)
        });
        if let Some((m, primary_latency)) = primary {
            if primary_latency > config.retry.hedge_after_us && mirrors > 1 {
                let hedge_target = (1..mirrors)
                    .map(|k| (m + k) % mirrors)
                    .find(|&c| !matches!(breakers[c].gate(at), BreakerGate::Skipped));
                if let Some(m2) = hedge_target {
                    res.hedged += 1;
                    res.attempts += 1;
                    if let Some(mt) = &meters {
                        mt.hedged.incr();
                        mt.attempts.incr();
                    }
                    match tier.handle(m2, &request) {
                        Some(mut h @ (Outcome::Body { .. } | Outcome::NotModified { .. })) => {
                            if breakers[m2].on_success(&config.breaker) {
                                res.breaker_closed += 1;
                                if let Some(mt) = &meters {
                                    mt.breaker_closed.incr();
                                }
                            }
                            let hedged_total = config.retry.hedge_after_us
                                + match &h {
                                    Outcome::Body { latency_us, .. }
                                    | Outcome::NotModified { latency_us, .. } => *latency_us,
                                    _ => 0,
                                };
                            if hedged_total < primary_latency {
                                res.hedge_wins += 1;
                                if let Some(mt) = &meters {
                                    mt.hedge_wins.incr();
                                }
                                match &mut h {
                                    Outcome::Body { latency_us, .. }
                                    | Outcome::NotModified { latency_us, .. } => {
                                        *latency_us = hedged_total;
                                    }
                                    _ => {}
                                }
                                winner = Some((m2, h));
                            }
                        }
                        None => {
                            res.down_attempts += 1;
                            if let Some(mt) = &meters {
                                mt.down_attempts.incr();
                            }
                            if breakers[m2].on_failure(at, &config.breaker) {
                                res.breaker_opened += 1;
                                if let Some(mt) = &meters {
                                    mt.breaker_opened.incr();
                                }
                            }
                        }
                        Some(_) => {}
                    }
                }
            }
        }

        if let Some(mt) = &meters {
            mt.breaker_open_gauge.set(breakers.iter().filter(|b| b.engaged()).count() as i64);
        }

        match &winner {
            Some((_, Outcome::Body { digest, round, latency_us, .. })) => {
                bodies_by_kind[kind.index()] += 1;
                inflight_seq += 1;
                inflight.push(Reverse((
                    at.saturating_add(*latency_us).saturating_add(penalty_us),
                    inflight_seq,
                    client,
                    kind.index(),
                    *round,
                    *digest,
                )));
                latency.record((*latency_us + penalty_us).max(1));
            }
            Some((_, Outcome::NotModified { latency_us, .. })) => {
                latency.record((*latency_us + penalty_us).max(1));
            }
            _ => {
                if !policy_shed && !saw_global_shed {
                    res.hard_failures += 1;
                    if let Some(mt) = &meters {
                        mt.exhausted.incr();
                    }
                }
            }
        }
    }

    // Flush the final partial hour so the SLO engine judges it.
    if let Some(o) = observer {
        o.staleness_gauge.set(tier.staleness_rounds() as i64);
        o.tick((fleet.day_micros / 3_600_000_000) as u32 + 1);
    }

    let tier_totals = tier.totals().clone();
    res.stale_served = tier_totals.stale_served;
    res.revalidations = tier_totals.revalidations;
    res.syncs = tier_totals.syncs;
    res.sync_rejected = tier_totals.sync_rejected;

    let totals = tier.merged_frontend_totals();
    let snapshot = latency.snapshot();
    DayReport {
        seed: fleet.seed,
        clients: fleet.clients,
        round: tier.origin().current_round().unwrap_or(0),
        bytes_saved_by_delta: totals.bytes_saved_by_delta,
        delta_fallbacks: totals.delta_fallbacks,
        shed: totals.shed_client + totals.shed_global,
        flash_arrivals,
        bodies_by_kind: ArtifactKind::ALL
            .iter()
            .zip(bodies_by_kind)
            .map(|(kind, n)| (kind.file_stem(), n))
            .collect(),
        totals,
        latency_p50_us: snapshot.p50(),
        latency_p90_us: snapshot.p90(),
        latency_p99_us: snapshot.p99(),
        resilience: res,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoreConfig;

    fn seeded_store() -> Arc<SnapshotStore> {
        let store = SnapshotStore::new(StoreConfig::default());
        for round in 1..=3u64 {
            let artifacts = ArtifactKind::ALL
                .iter()
                .map(|&kind| {
                    let base = kind.index() as u128 * 1_000_000;
                    let n = 200 + round as u128 * 50;
                    (kind, (0..n).map(|i| base + i * 7).collect::<sixdust_addr::AddrSet>())
                })
                .collect();
            store.publish_round(round, "day", artifacts);
        }
        Arc::new(store)
    }

    #[test]
    fn zipf_weights_decrease_and_cover() {
        let c = zipf_cumulative(1_000);
        assert_eq!(c.len(), ArtifactKind::ALL.len());
        let mut prev = 0;
        let mut prev_w = u64::MAX;
        for &cum in &c {
            let w = cum - prev;
            assert!(w <= prev_w, "weights are non-increasing in rank");
            assert!(w > 0);
            prev = cum;
            prev_w = w;
        }
        // Exponent 0 degenerates to uniform.
        let flat = zipf_cumulative(0);
        let w0 = flat[0];
        assert!(flat.windows(2).all(|w| w[1] - w[0] == w0));
    }

    #[test]
    fn weighted_draw_splits_the_draw_space_exactly() {
        // Two equal weights: the widening multiply splits the 64-bit
        // draw space exactly in half (the old `draw % total` gave the
        // low slot 2^64 mod total extra points).
        let c = vec![500, 1_000];
        assert_eq!(pick_weighted(&c, 0), 0);
        assert_eq!(pick_weighted(&c, u64::MAX / 2), 0);
        assert_eq!(pick_weighted(&c, u64::MAX / 2 + 1), 1);
        assert_eq!(pick_weighted(&c, u64::MAX), 1);
    }

    #[test]
    fn build_rejects_degenerate_configs() {
        assert!(FleetConfig::builder().build().is_ok());
        let err = FleetConfig { clients: 0, ..FleetConfig::default() }.build().unwrap_err();
        assert_eq!(err, FleetConfigError::ZeroClients);
        let err = FleetConfig { requests: 0, ..FleetConfig::default() }.build().unwrap_err();
        assert_eq!(err, FleetConfigError::ZeroRequests);
        let err = FleetConfig { day_micros: 0, ..FleetConfig::default() }.build().unwrap_err();
        assert_eq!(err, FleetConfigError::ZeroDayMicros);
        // 8 artifact ranks at exponent 40.0: 8^40 overflows the
        // fixed-point rank^s — the panic this used to be.
        let err = FleetConfig { zipf_exponent_milli: 40_000, ..FleetConfig::default() }
            .build()
            .unwrap_err();
        assert_eq!(err, FleetConfigError::ZipfExponentOverflow);
        // Session shapes get the same scrutiny.
        let shape = SessionShape::builder().with_max_requests_per_client(0);
        let err = FleetConfig::builder().with_session(shape).build().unwrap_err();
        assert_eq!(err, FleetConfigError::ZeroSessionRequestCap);
        let shape = SessionShape { length_zipf_milli: 90_000, ..SessionShape::default() };
        let err = FleetConfig::builder().with_session(shape).build().unwrap_err();
        assert_eq!(err, FleetConfigError::ZipfExponentOverflow);
        let shape = SessionShape::builder().with_spike(86_400_000_000, 1);
        let err = FleetConfig::builder().with_session(shape).build().unwrap_err();
        assert_eq!(err, FleetConfigError::FlashSpikeOutsideDay);
        // A session config with requests = 0 is fine: sessions ignore it.
        let ok = FleetConfig { requests: 0, ..FleetConfig::default() }
            .with_session(SessionShape::default())
            .build();
        assert!(ok.is_ok());
    }

    #[test]
    fn event_loop_ledger_is_byte_identical_to_synchronous() {
        let store = seeded_store();
        let fleet = FleetConfig::builder().with_requests(20_000).with_clients(60);
        let mut fe_a = Frontend::new(FrontendConfig::default(), store.clone());
        let a = simulate_day(&fleet, &mut fe_a, &store);
        let mut fe_b = Frontend::new(FrontendConfig::default(), store.clone());
        let b = simulate_day_sync(&fleet, &mut fe_b, &store);
        assert_eq!(a, b, "reactor and synchronous paths keep one ledger");
        assert_eq!(
            serde_json::to_string(&a).expect("serialize"),
            serde_json::to_string(&b).expect("serialize"),
            "byte-identical on the wire, not merely Eq"
        );
    }

    #[test]
    fn session_day_front_loads_the_flash_crowd() {
        let spike_at = 10_000_000_000u64;
        let window = 600_000_000u64;
        let shape = SessionShape::builder()
            .with_spike(spike_at, window)
            .with_flash_permille(500);
        let config = FleetConfig::builder()
            .with_clients(2_000)
            .with_session(shape)
            .build()
            .expect("valid session config");
        let (schedule, flash) = build_schedule(&config);
        assert!(!schedule.is_empty());
        assert!(flash > 0, "half the sessions chase the publication");
        assert!(
            schedule.windows(2).all(|w| (w[0].at_us, w[0].id) <= (w[1].at_us, w[1].id)),
            "schedule is sorted by (time, id)"
        );
        assert!(schedule.iter().all(|a| a.at_us < config.day_micros), "truncated at midnight");
        // The quadratic offset front-loads the spike window: more
        // arrivals land in its first half than its second.
        let first = schedule
            .iter()
            .filter(|a| a.at_us >= spike_at && a.at_us < spike_at + window / 2)
            .count();
        let second = schedule
            .iter()
            .filter(|a| a.at_us >= spike_at + window / 2 && a.at_us < spike_at + window)
            .count();
        assert!(first > second, "front-loaded: {first} first-half vs {second} second-half");
        // And the expansion is deterministic.
        let (again, flash_again) = build_schedule(&config);
        assert_eq!(flash, flash_again);
        assert_eq!(schedule.len(), again.len());
        assert!(schedule
            .iter()
            .zip(&again)
            .all(|(a, b)| (a.at_us, a.id, a.client) == (b.at_us, b.id, b.client)));
    }

    #[test]
    fn session_day_replays_byte_identically_through_the_reactor() {
        let store = seeded_store();
        let shape = SessionShape::builder()
            .with_think_time_us(30_000_000)
            .with_spike(43_200_000_000, 1_800_000_000);
        let fleet = FleetConfig::builder().with_clients(3_000).with_session(shape);
        let a = run_day(&fleet, FrontendConfig::default(), &store, None);
        let b = run_day(&fleet, FrontendConfig::default(), &store, None);
        assert_eq!(a, b, "session day replays identically");
        assert!(a.flash_arrivals > 0);
        assert!(a.totals.requests > 3_000, "the heavy tail multiplies arrivals");
        let mut fe = Frontend::new(FrontendConfig::default(), store.clone());
        let sync = simulate_day_sync(&fleet, &mut fe, &store);
        assert_eq!(a, sync, "event loop ≡ synchronous under sessions too");
    }

    #[test]
    fn same_seed_same_day() {
        let store = seeded_store();
        let fleet = FleetConfig::builder().with_requests(5_000).with_clients(40);
        let a = run_day(&fleet, FrontendConfig::default(), &store, None);
        let b = run_day(&fleet, FrontendConfig::default(), &store, None);
        assert_eq!(a, b, "identical seed and store replay identically");
        let c = run_day(&fleet.clone().with_seed(99), FrontendConfig::default(), &store, None);
        assert_ne!(a.totals, c.totals, "different seed gives a different day");
    }

    #[test]
    fn seeded_100k_day_has_resolved_percentiles_and_delta_savings() {
        // The microsecond histogram must give the percentiles real
        // resolution: with the old serve.latency_ms recording, base
        // latency 1.5 ms crushed p50 and p99 into the same log2 bin.
        let store = seeded_store();
        let reg = sixdust_telemetry::Registry::new();
        let report =
            run_day(&FleetConfig::default(), FrontendConfig::default(), &store, Some(&reg));
        assert_eq!(report.totals.requests, 100_000);
        assert!(
            report.latency_p50_us < report.latency_p99_us,
            "p50 {} must resolve below p99 {}",
            report.latency_p50_us,
            report.latency_p99_us
        );
        assert!(report.latency_p50_us >= 1_500, "latency floor is the 1.5 ms base");
        assert!(report.latency_p50_us <= report.latency_p90_us);
        assert!(report.latency_p90_us <= report.latency_p99_us);
        assert!(report.bytes_saved_by_delta > 0, "one-behind clients pull cheaper deltas");
        assert_eq!(report.bytes_saved_by_delta, report.totals.bytes_saved_by_delta);
        let snap = reg.snapshot();
        let us = snap.histogram("serve.latency_us").expect("microsecond histogram");
        assert_eq!(us.count, report.totals.bodies + report.totals.not_modified);
        assert!(us.p50() < us.p99(), "registry view resolves too");
        assert_eq!(snap.counter("serve.bytes_saved.delta"), Some(report.bytes_saved_by_delta));
        // The per-kind RED rate reconciles with the aggregate.
        let by_kind: u64 = ArtifactKind::ALL
            .iter()
            .filter_map(|k| snap.counter(&format!("serve.kind.{}.requests", k.file_stem())))
            .sum();
        assert_eq!(by_kind, report.totals.requests);
    }

    #[test]
    fn day_exercises_every_path() {
        let store = seeded_store();
        let mut fleet = FleetConfig::builder().with_requests(20_000).with_clients(60);
        // Compress the day to one virtual hour: per-client demand
        // (20000/60 ≈ 333) then provably exceeds the per-client token
        // budget (burst 8 + 4/min × 60 min = 248), so shedding is
        // guaranteed by arithmetic, not by arrival clustering.
        fleet.day_micros = 3_600_000_000;
        let report = run_day(&fleet, FrontendConfig::default(), &store, None);
        let t = &report.totals;
        assert_eq!(t.requests, 20_000);
        assert_eq!(
            t.bodies + t.not_modified + t.shed_client + t.shed_global + t.unavailable,
            t.requests,
            "every request is accounted exactly once"
        );
        assert_eq!(t.unavailable, 0, "a fully published store always has a body");
        assert_eq!(t.bodies, t.delta_fetches + t.full_fetches);
        assert!(t.cache_hits > 0 && t.not_modified > 0 && t.shed_client > 0);
        assert!(t.delta_fetches > 0, "one-behind clients pull deltas");
        assert!(t.bytes_sent > 0);
        // Zipf head: the full responsive list is the most-served body.
        let responsive = report.bodies_by_kind[0].1;
        assert!(report.bodies_by_kind[1..].iter().all(|&(_, n)| n <= responsive));
        assert_eq!(report.round, 3);
    }

    #[test]
    fn backoff_is_seeded_exponential_and_capped() {
        let policy = RetryPolicy::default();
        // Deterministic: same (seed, request, retry) → same delay.
        assert_eq!(backoff_us(&policy, 7, 42, 1), backoff_us(&policy, 7, 42, 1));
        // Jitter keeps each delay within ±25% of the exponential base.
        for retry in 1..=6u32 {
            let base = (policy.backoff_base_us << (retry - 1)).min(policy.backoff_cap_us);
            let b = backoff_us(&policy, 7, 42, retry);
            let jitter = base / 4;
            assert!(
                b >= base - jitter && b <= base + jitter,
                "retry {retry}: {b} outside [{}, {}]",
                base - jitter,
                base + jitter
            );
        }
        // Zero jitter degenerates to the pure exponential.
        let flat = RetryPolicy { jitter_permille: 0, ..policy };
        assert_eq!(backoff_us(&flat, 7, 42, 1), 50_000);
        assert_eq!(backoff_us(&flat, 7, 42, 2), 100_000);
        assert_eq!(backoff_us(&flat, 7, 42, 20), 2_000_000, "cap holds");
    }

    #[test]
    fn breaker_walks_closed_open_half_open_deterministically() {
        let config =
            BreakerConfig { failure_threshold: 2, open_cooldown_us: 100, half_open_probes: 2 };
        let mut b = Breaker::new();
        assert!(matches!(b.gate(0), BreakerGate::Allowed));
        assert!(!b.on_failure(10, &config), "first failure under threshold");
        assert!(b.on_failure(10, &config), "second failure trips open");
        assert!(b.engaged());
        assert!(matches!(b.gate(50), BreakerGate::Skipped), "open inside cooldown");
        assert!(matches!(b.gate(110), BreakerGate::Probe), "cooldown expiry half-opens");
        assert!(!b.on_success(&config), "one probe is not enough");
        assert!(b.on_success(&config), "second probe re-closes");
        assert!(!b.engaged());
        // A half-open failure re-opens immediately (no threshold grace).
        let mut b = Breaker::new();
        b.on_failure(0, &config);
        b.on_failure(0, &config);
        assert!(matches!(b.gate(100), BreakerGate::Probe));
        assert!(b.on_failure(100, &config), "half-open failure re-trips");
        assert!(matches!(b.gate(150), BreakerGate::Skipped));
    }

    #[test]
    fn chaos_day_on_a_healthy_tier_matches_itself_and_never_hard_fails() {
        use crate::faults::ServeFaultConfig;
        use crate::mirror::MirrorTierConfig;
        let run = || {
            let origin = seeded_store();
            let mut tier = MirrorTier::new(
                MirrorTierConfig::builder().with_mirrors(3),
                origin,
                ServeFaultConfig::lossless(),
            );
            let config = ChaosDayConfig::builder()
                .with_fleet(FleetConfig::builder().with_requests(4_000).with_clients(30));
            run_chaos_day(&config, &mut tier, &[], None)
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "chaos day replays byte-identically at a fixed seed");
        assert_eq!(a.resilience.hard_failures, 0);
        assert_eq!(a.resilience.logical_requests, 4_000);
        assert!(a.resilience.attempts >= 4_000);
        assert_eq!(a.resilience.mirrors, 3);
        assert_eq!(a.round, 3);
        // Healthy tier: no breaker ever opens, warm-deployed mirrors
        // need no sync traffic (the plan is empty), and answered
        // requests land in the latency histogram.
        assert_eq!(a.resilience.breaker_opened, 0);
        assert_eq!(a.resilience.syncs, 0, "warm deploy: in sync without a transfer");
        assert_eq!(a.resilience.stale_served, 0);
        assert!(a.latency_p50_us > 0);
    }
}
