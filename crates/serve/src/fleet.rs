//! A deterministic simulated fleet of registered hitlist consumers.
//!
//! Every schedule decision — who asks, for what, when, and how fresh
//! their local copy is — is derived from a seed through the same
//! SplitMix-based PRF the rest of the workspace uses, so a day of load
//! replays bit-identically. Artifact popularity follows a Zipf law over
//! [`ArtifactKind::ALL`] (the full responsive list dominates, exotic
//! slices tail off), matching how real hitlist mirrors see traffic.

use std::collections::HashMap;
use std::sync::Arc;

use sixdust_addr::prf::prf_u128;

use crate::server::{FetchKind, Frontend, FrontendConfig, FrontendTotals, Outcome, Request};
use crate::store::{ArtifactKind, SnapshotStore};

const TAG_TIME: u64 = 1;
const TAG_CLIENT: u64 = 2;
const TAG_KIND: u64 = 3;
const TAG_FRESH: u64 = 4;
const TAG_COND: u64 = 5;

/// Fleet configuration.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of distinct registered consumers.
    pub clients: u64,
    /// Requests issued across the day.
    pub requests: u64,
    /// Zipf exponent over artifact popularity ranks (milli-units:
    /// 1000 = classic 1/rank).
    pub zipf_exponent_milli: u32,
    /// PRNG seed; equal seeds replay the identical day.
    pub seed: u64,
    /// Permille of requests from clients holding the round the store
    /// last diffed against (e.g. yesterday's mirror sync); they ask for
    /// a delta on top of it.
    pub one_behind_permille: u32,
    /// Permille of requests sent conditionally (If-None-Match with the
    /// digest the client last saw).
    pub conditional_permille: u32,
    /// Length of the simulated day in virtual microseconds.
    pub day_micros: u64,
}

impl Default for FleetConfig {
    fn default() -> FleetConfig {
        FleetConfig {
            clients: 500,
            requests: 100_000,
            zipf_exponent_milli: 1_000,
            seed: 0x6D15_7A11,
            one_behind_permille: 350,
            conditional_permille: 250,
            day_micros: 86_400_000_000,
        }
    }
}

impl FleetConfig {
    /// Starts from the default configuration.
    pub fn builder() -> FleetConfig {
        FleetConfig::default()
    }

    /// Sets the consumer count.
    pub fn with_clients(mut self, clients: u64) -> FleetConfig {
        self.clients = clients.max(1);
        self
    }

    /// Sets the total request count for the day.
    pub fn with_requests(mut self, requests: u64) -> FleetConfig {
        self.requests = requests;
        self
    }

    /// Sets the seed.
    pub fn with_seed(mut self, seed: u64) -> FleetConfig {
        self.seed = seed;
        self
    }
}

/// The report card of one simulated day, serializable for
/// `--serve-report`.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct DayReport {
    /// Seed the day was generated from.
    pub seed: u64,
    /// Configured consumer count.
    pub clients: u64,
    /// Store round the day was served from.
    pub round: u64,
    /// Front-end totals (requests, bytes, cache, shed, …).
    pub totals: FrontendTotals,
    /// Served bodies per artifact kind, in [`ArtifactKind::ALL`] order.
    pub bodies_by_kind: Vec<(String, u64)>,
    /// Median answered-request latency, virtual microseconds. Zero when
    /// the report predates these fields (`serde(default)`) or no request
    /// was answered.
    #[serde(default)]
    pub latency_p50_us: u64,
    /// 90th-percentile answered-request latency, virtual microseconds.
    #[serde(default)]
    pub latency_p90_us: u64,
    /// 99th-percentile answered-request latency, virtual microseconds.
    #[serde(default)]
    pub latency_p99_us: u64,
    /// Bytes the delta encoding saved across the day (full bodies
    /// replaced minus delta bytes sent).
    #[serde(default)]
    pub bytes_saved_by_delta: u64,
}

/// Zipf cumulative weights over the popularity-ranked artifact kinds,
/// in integer milli-weights so the draw is exact and portable.
fn zipf_cumulative(exponent_milli: u32) -> Vec<u64> {
    let mut acc = 0u64;
    let mut cumulative = Vec::with_capacity(ArtifactKind::ALL.len());
    for rank in 1..=ArtifactKind::ALL.len() as u32 {
        // weight = 1 / rank^s with s in milli-units, computed as a
        // fixed-point power: rank^s = exp2(s * log2(rank)). Integer
        // approximation: interpolate between the two nearest integer
        // exponents, which is exact at s = 0 and s = 1000 (the default).
        let s = exponent_milli;
        let lo = rank.pow(s / 1000);
        let hi = lo.saturating_mul(rank);
        let frac = u64::from(s % 1000);
        let denom_milli = u64::from(lo) * (1000 - frac) + u64::from(hi) * frac;
        // weight in parts-per-million of the rank-1 weight.
        acc += 1_000_000_000 / denom_milli.max(1);
        cumulative.push(acc);
    }
    cumulative
}

fn pick_kind(cumulative: &[u64], draw: u64) -> ArtifactKind {
    let total = *cumulative.last().expect("non-empty kind table");
    let point = draw % total;
    let slot = cumulative.iter().position(|&c| point < c).unwrap_or(cumulative.len() - 1);
    ArtifactKind::ALL[slot]
}

/// What each (client, kind) pair remembers between requests: the
/// content digest of the copy it last downloaded (its ETag).
#[derive(Debug, Clone, Copy)]
struct Held {
    digest: u64,
}

/// Drives one simulated day of fleet load against a front end and
/// returns the report. Deterministic for a fixed (config, store state).
pub fn simulate_day(
    config: &FleetConfig,
    frontend: &mut Frontend,
    store: &SnapshotStore,
) -> DayReport {
    let cumulative = zipf_cumulative(config.zipf_exponent_milli);
    let current_round = store.current_round().unwrap_or(0);
    // The round each artifact's delta was diffed against, fixed at day
    // start: the base a one-behind consumer holds.
    let prev_rounds: Vec<Option<u64>> =
        ArtifactKind::ALL.iter().map(|&k| store.artifact(k).and_then(|v| v.prev_round())).collect();

    // Build the arrival schedule up front and sort by (time, index) so
    // replay order is total and independent of generation order.
    let mut schedule: Vec<(u64, u64)> = (0..config.requests)
        .map(|i| {
            let at = prf_u128(config.seed, u128::from(i), TAG_TIME) % config.day_micros.max(1);
            (at, i)
        })
        .collect();
    schedule.sort_unstable();

    let mut held: HashMap<(u64, usize), Held> = HashMap::new();
    let mut bodies_by_kind = vec![0u64; ArtifactKind::ALL.len()];

    for &(at_us, i) in &schedule {
        let client = prf_u128(config.seed, u128::from(i), TAG_CLIENT) % config.clients.max(1);
        let kind = pick_kind(&cumulative, prf_u128(config.seed, u128::from(i), TAG_KIND));
        let state = held.get(&(client, kind.index())).copied();

        // Freshness: a slice of the fleet holds the store's previous
        // round (yesterday's sync) and asks for a delta on top of it;
        // everyone else asks for the full snapshot. Knowingly-stale
        // consumers do not send an ETag; up-to-date ones (with a body
        // fetched earlier today) conditionally revalidate instead.
        let fresh_draw = prf_u128(config.seed, u128::from(i), TAG_FRESH) % 1000;
        let one_behind = fresh_draw < u64::from(config.one_behind_permille);
        let fetch = match prev_rounds[kind.index()] {
            Some(prev) if one_behind => FetchKind::DeltaSince(prev),
            _ => FetchKind::Full,
        };
        let cond_draw = prf_u128(config.seed, u128::from(i), TAG_COND) % 1000;
        let if_none_match = match state {
            Some(h) if !one_behind && cond_draw < u64::from(config.conditional_permille) => {
                Some(h.digest)
            }
            _ => None,
        };

        let request = Request { client, kind, fetch, if_none_match, at_us };
        match frontend.handle(&request) {
            Outcome::Body { digest, .. } => {
                bodies_by_kind[kind.index()] += 1;
                held.insert((client, kind.index()), Held { digest });
            }
            Outcome::NotModified { .. }
            | Outcome::ShedClient
            | Outcome::ShedGlobal
            | Outcome::Unavailable => {}
        }
    }

    let latency = frontend.latency_snapshot();
    DayReport {
        seed: config.seed,
        clients: config.clients,
        round: current_round,
        bytes_saved_by_delta: frontend.totals().bytes_saved_by_delta,
        totals: frontend.totals().clone(),
        bodies_by_kind: ArtifactKind::ALL
            .iter()
            .zip(bodies_by_kind)
            .map(|(kind, n)| (kind.file_stem(), n))
            .collect(),
        latency_p50_us: latency.p50(),
        latency_p90_us: latency.p90(),
        latency_p99_us: latency.p99(),
    }
}

/// Convenience wrapper: build a front end over `store` with `frontend`
/// config (telemetry optional) and replay one day of `fleet` load.
pub fn run_day(
    fleet: &FleetConfig,
    frontend: FrontendConfig,
    store: &Arc<SnapshotStore>,
    telemetry: Option<&sixdust_telemetry::Registry>,
) -> DayReport {
    run_day_observed(fleet, frontend, store, telemetry, None)
}

/// Like [`run_day`], but additionally attaches a black-box flight
/// recorder: every shed decision the front end makes lands in the
/// recorder's event ring (keyed by virtual hour), available to captures.
pub fn run_day_observed(
    fleet: &FleetConfig,
    frontend: FrontendConfig,
    store: &Arc<SnapshotStore>,
    telemetry: Option<&sixdust_telemetry::Registry>,
    flight: Option<&sixdust_telemetry::FlightRecorder>,
) -> DayReport {
    let mut fe = Frontend::new(frontend, store.clone());
    if let Some(registry) = telemetry {
        fe = fe.with_telemetry(registry);
    }
    if let Some(recorder) = flight {
        fe = fe.with_flight(recorder.clone());
    }
    simulate_day(fleet, &mut fe, store)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoreConfig;

    fn seeded_store() -> Arc<SnapshotStore> {
        let store = SnapshotStore::new(StoreConfig::default());
        for round in 1..=3u64 {
            let artifacts = ArtifactKind::ALL
                .iter()
                .map(|&kind| {
                    let base = kind.index() as u128 * 1_000_000;
                    let n = 200 + round as u128 * 50;
                    (kind, (0..n).map(|i| base + i * 7).collect::<sixdust_addr::AddrSet>())
                })
                .collect();
            store.publish_round(round, "day", artifacts);
        }
        Arc::new(store)
    }

    #[test]
    fn zipf_weights_decrease_and_cover() {
        let c = zipf_cumulative(1_000);
        assert_eq!(c.len(), ArtifactKind::ALL.len());
        let mut prev = 0;
        let mut prev_w = u64::MAX;
        for &cum in &c {
            let w = cum - prev;
            assert!(w <= prev_w, "weights are non-increasing in rank");
            assert!(w > 0);
            prev = cum;
            prev_w = w;
        }
        // Exponent 0 degenerates to uniform.
        let flat = zipf_cumulative(0);
        let w0 = flat[0];
        assert!(flat.windows(2).all(|w| w[1] - w[0] == w0));
    }

    #[test]
    fn same_seed_same_day() {
        let store = seeded_store();
        let fleet = FleetConfig::builder().with_requests(5_000).with_clients(40);
        let a = run_day(&fleet, FrontendConfig::default(), &store, None);
        let b = run_day(&fleet, FrontendConfig::default(), &store, None);
        assert_eq!(a, b, "identical seed and store replay identically");
        let c = run_day(&fleet.clone().with_seed(99), FrontendConfig::default(), &store, None);
        assert_ne!(a.totals, c.totals, "different seed gives a different day");
    }

    #[test]
    fn seeded_100k_day_has_resolved_percentiles_and_delta_savings() {
        // The microsecond histogram must give the percentiles real
        // resolution: with the old serve.latency_ms recording, base
        // latency 1.5 ms crushed p50 and p99 into the same log2 bin.
        let store = seeded_store();
        let reg = sixdust_telemetry::Registry::new();
        let report =
            run_day(&FleetConfig::default(), FrontendConfig::default(), &store, Some(&reg));
        assert_eq!(report.totals.requests, 100_000);
        assert!(
            report.latency_p50_us < report.latency_p99_us,
            "p50 {} must resolve below p99 {}",
            report.latency_p50_us,
            report.latency_p99_us
        );
        assert!(report.latency_p50_us >= 1_500, "latency floor is the 1.5 ms base");
        assert!(report.latency_p50_us <= report.latency_p90_us);
        assert!(report.latency_p90_us <= report.latency_p99_us);
        assert!(report.bytes_saved_by_delta > 0, "one-behind clients pull cheaper deltas");
        assert_eq!(report.bytes_saved_by_delta, report.totals.bytes_saved_by_delta);
        let snap = reg.snapshot();
        let us = snap.histogram("serve.latency_us").expect("microsecond histogram");
        assert_eq!(us.count, report.totals.bodies + report.totals.not_modified);
        assert!(us.p50() < us.p99(), "registry view resolves too");
        assert_eq!(snap.counter("serve.bytes_saved.delta"), Some(report.bytes_saved_by_delta));
        // The per-kind RED rate reconciles with the aggregate.
        let by_kind: u64 = ArtifactKind::ALL
            .iter()
            .filter_map(|k| snap.counter(&format!("serve.kind.{}.requests", k.file_stem())))
            .sum();
        assert_eq!(by_kind, report.totals.requests);
    }

    #[test]
    fn day_exercises_every_path() {
        let store = seeded_store();
        let mut fleet = FleetConfig::builder().with_requests(20_000).with_clients(60);
        // Compress the day to one virtual hour: per-client demand
        // (20000/60 ≈ 333) then provably exceeds the per-client token
        // budget (burst 8 + 4/min × 60 min = 248), so shedding is
        // guaranteed by arithmetic, not by arrival clustering.
        fleet.day_micros = 3_600_000_000;
        let report = run_day(&fleet, FrontendConfig::default(), &store, None);
        let t = &report.totals;
        assert_eq!(t.requests, 20_000);
        assert_eq!(
            t.bodies + t.not_modified + t.shed_client + t.shed_global + t.unavailable,
            t.requests,
            "every request is accounted exactly once"
        );
        assert_eq!(t.unavailable, 0, "a fully published store always has a body");
        assert_eq!(t.bodies, t.delta_fetches + t.full_fetches);
        assert!(t.cache_hits > 0 && t.not_modified > 0 && t.shed_client > 0);
        assert!(t.delta_fetches > 0, "one-behind clients pull deltas");
        assert!(t.bytes_sent > 0);
        // Zipf head: the full responsive list is the most-served body.
        let responsive = report.bodies_by_kind[0].1;
        assert!(report.bodies_by_kind[1..].iter().all(|&(_, n)| n <= responsive));
        assert_eq!(report.round, 3);
    }
}
