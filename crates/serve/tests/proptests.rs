//! Property tests for the delta codec: round-trips, delta application,
//! corrupted-input rejection (errors, never panics), and byte-identity
//! of the wire streams across [`AddrSet`] chunk representations.

use proptest::prelude::*;

use sixdust_addr::AddrSet;
use sixdust_serve::codec::{
    apply_delta, content_digest, decode_full, delta_digests, encode_delta, encode_full,
};

/// A sorted, deduplicated u128 set with a mix of small and huge values.
/// The low-range component is dense enough that bitmap chunks occur
/// routinely, so every property below also exercises the packed
/// representation.
fn addr_set(max_len: usize) -> impl Strategy<Value = AddrSet> {
    prop::collection::vec(
        prop_oneof![
            0..5_000u128,
            any::<u64>().prop_map(u128::from),
            any::<u128>(),
            Just(u128::MAX),
        ],
        0..max_len,
    )
    .prop_map(AddrSet::from_unsorted)
}

/// A pair (prev, next) sharing structure: next is prev with some items
/// removed and some added, like consecutive hitlist rounds.
fn related_pair() -> impl Strategy<Value = (AddrSet, AddrSet)> {
    (addr_set(200), addr_set(40), any::<u16>()).prop_map(|(prev, extra, mask)| {
        let mut next: AddrSet = prev
            .iter()
            .enumerate()
            .filter(|(i, _)| mask >> (i % 16) & 1 == 0)
            .map(|(_, a)| a)
            .collect();
        next.union_in_place(&extra);
        (prev, next)
    })
}

proptest! {
    #[test]
    fn full_round_trips(items in addr_set(300)) {
        let encoded = encode_full(&items);
        let decoded = decode_full(&encoded).expect("own encoding decodes");
        prop_assert_eq!(decoded, items);
    }

    #[test]
    fn streams_match_flat_vec_path(items in addr_set(300)) {
        // The wire bytes and digest are defined over the sorted item
        // sequence, never the chunk layout: encoding through whatever
        // mix of sorted and bitmap chunks the set picked is
        // byte-identical to encoding the flat sorted vector directly.
        let flat = items.to_vec();
        prop_assert_eq!(encode_full(&items), encode_full(flat.iter().copied()));
        prop_assert_eq!(content_digest(&items), content_digest(flat.iter().copied()));
    }

    #[test]
    fn delta_applies_to_next(pair in related_pair()) {
        let (prev, next) = pair;
        let delta = encode_delta(&prev, &next);
        let rebuilt = apply_delta(&prev, &delta).expect("own delta applies");
        prop_assert_eq!(&rebuilt, &next);
        // The advertised digests match the actual contents.
        let (base, result) = delta_digests(&delta).expect("digests readable");
        prop_assert_eq!(base, content_digest(&prev));
        prop_assert_eq!(result, content_digest(&next));
        // And the delta round-trip lands on the same bytes as a full
        // snapshot of `next` — byte-identical artifacts either way.
        prop_assert_eq!(encode_full(&rebuilt), encode_full(&next));
    }

    #[test]
    fn delta_bytes_ignore_chunk_representation(pair in related_pair()) {
        let (prev, next) = pair;
        // Rebuild both endpoints one insert at a time; the incremental
        // path splits and converts chunks in a different order than the
        // bulk constructor, but the delta stream must not care.
        let mut prev_inc = AddrSet::new();
        for item in prev.iter() {
            prev_inc.insert(item);
        }
        let mut next_inc = AddrSet::new();
        for item in next.iter() {
            next_inc.insert(item);
        }
        prop_assert_eq!(encode_delta(&prev_inc, &next_inc), encode_delta(&prev, &next));
        prop_assert_eq!(encode_full(&next_inc), encode_full(&next));
    }

    #[test]
    fn delta_rejects_wrong_base(pair in related_pair(), nudge in 1..1_000u128) {
        let (prev, next) = pair;
        let delta = encode_delta(&prev, &next);
        let mut wrong = prev.clone();
        let probe = prev.iter().last().map_or(nudge, |l| l.wrapping_add(nudge));
        wrong.insert(probe);
        if content_digest(&wrong) != content_digest(&prev) {
            prop_assert!(apply_delta(&wrong, &delta).is_err());
        }
    }

    #[test]
    fn truncation_always_rejected(items in addr_set(120), cut in 0..1_000usize) {
        let encoded = encode_full(&items);
        let cut = cut % encoded.len().max(1);
        prop_assert!(decode_full(&encoded[..cut]).is_err(), "prefix of length {} accepted", cut);
    }

    #[test]
    fn byte_flips_never_panic(items in addr_set(120), pos in 0..1_000usize, bit in 0..8u32) {
        let mut encoded = encode_full(&items);
        let pos = pos % encoded.len();
        encoded[pos] ^= 1 << bit;
        // Any single-bit flip must be rejected (checksum or structural
        // validation) — and must never panic.
        prop_assert!(decode_full(&encoded).is_err());
    }

    #[test]
    fn delta_byte_flips_never_panic(pair in related_pair(), pos in 0..10_000usize, bit in 0..8u32) {
        let (prev, next) = pair;
        let mut delta = encode_delta(&prev, &next);
        let pos = pos % delta.len();
        delta[pos] ^= 1 << bit;
        prop_assert!(apply_delta(&prev, &delta).is_err());
    }

    #[test]
    fn garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..300), base in addr_set(50)) {
        // Arbitrary byte soup: both decoders must return Err, not panic.
        let _ = decode_full(&bytes);
        let _ = apply_delta(&base, &bytes);
    }
}

#[test]
fn empty_singleton_and_removal_only_deltas() {
    let set = |v: &[u128]| AddrSet::from_unsorted(v.to_vec());
    let empty = set(&[]);
    let one = set(&[42]);
    let many = set(&[1, 5, 9]);

    // empty -> empty, empty -> singleton, singleton -> empty.
    for (prev, next) in
        [(&empty, &empty), (&empty, &one), (&one, &empty), (&many, &one), (&one, &many)]
    {
        let delta = encode_delta(prev, next);
        assert_eq!(&apply_delta(prev, &delta).unwrap(), next);
    }

    // Removal-only delta is smaller than the full snapshot it replaces.
    let big: AddrSet = (0..500u128).map(|i| i * 97).collect();
    let smaller: AddrSet = big.iter().filter(|a| a % 5 != 0).collect();
    let delta = encode_delta(&big, &smaller);
    assert_eq!(apply_delta(&big, &delta).unwrap(), smaller);
    assert!(delta.len() < encode_full(&smaller).len());
}
