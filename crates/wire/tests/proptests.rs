//! Roundtrip property tests for every wire codec.

use proptest::prelude::*;
use sixdust_addr::Addr;
use sixdust_wire::{dns, icmpv6, quic, tcp, udp, Ipv6Header, NextHeader, Packet, Transport};

fn arb_addr() -> impl Strategy<Value = Addr> {
    any::<u128>().prop_map(Addr)
}

fn arb_label() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-z0-9-]{1,20}").expect("regex")
}

fn arb_name() -> impl Strategy<Value = String> {
    proptest::collection::vec(arb_label(), 1..5).prop_map(|ls| ls.join("."))
}

fn arb_tcp_option() -> impl Strategy<Value = tcp::TcpOption> {
    prop_oneof![
        Just(tcp::TcpOption::Nop),
        any::<u16>().prop_map(tcp::TcpOption::Mss),
        (0u8..15).prop_map(tcp::TcpOption::WindowScale),
        Just(tcp::TcpOption::SackPermitted),
        (any::<u32>(), any::<u32>()).prop_map(|(a, b)| tcp::TcpOption::Timestamps(a, b)),
    ]
}

fn arb_rdata() -> impl Strategy<Value = dns::Rdata> {
    prop_oneof![
        any::<u32>().prop_map(dns::Rdata::A),
        any::<u128>().prop_map(|v| dns::Rdata::Aaaa(Addr(v))),
        arb_name().prop_map(dns::Rdata::Ns),
        (any::<u16>(), arb_name()).prop_map(|(p, n)| dns::Rdata::Mx(p, n)),
        arb_name().prop_map(dns::Rdata::Cname),
        arb_label().prop_map(dns::Rdata::Txt),
    ]
}

proptest! {
    #[test]
    fn ipv6_header_roundtrip(
        src in arb_addr(), dst in arb_addr(),
        tc in any::<u8>(), flow in 0u32..=0xf_ffff,
        plen in any::<u16>(), nh in any::<u8>(), hop in any::<u8>(),
    ) {
        let h = Ipv6Header {
            traffic_class: tc, flow_label: flow, payload_len: plen,
            next_header: NextHeader::from(nh), hop_limit: hop, src, dst,
        };
        prop_assert_eq!(Ipv6Header::parse(&h.to_bytes()).unwrap(), h);
    }

    #[test]
    fn icmp_echo_roundtrip(
        src in arb_addr(), dst in arb_addr(),
        ident in any::<u16>(), seq in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 0..256),
        fragmented in any::<bool>(),
    ) {
        let req = icmpv6::Icmpv6::EchoRequest { ident, seq, payload: payload.clone() };
        prop_assert_eq!(icmpv6::Icmpv6::parse(&req.to_bytes(src, dst), src, dst).unwrap(), req);
        let rep = icmpv6::Icmpv6::EchoReply { ident, seq, payload, fragmented };
        prop_assert_eq!(icmpv6::Icmpv6::parse(&rep.to_bytes(src, dst), src, dst).unwrap(), rep);
    }

    #[test]
    fn tcp_roundtrip(
        src in arb_addr(), dst in arb_addr(),
        sp in any::<u16>(), dp in any::<u16>(), seq in any::<u32>(), ack in any::<u32>(),
        window in any::<u16>(),
        syn in any::<bool>(), ackf in any::<bool>(), rst in any::<bool>(), fin in any::<bool>(),
        options in proptest::collection::vec(arb_tcp_option(), 0..4), // 40-byte option-space cap
    ) {
        let seg = tcp::TcpSegment {
            src_port: sp, dst_port: dp, seq, ack_no: ack,
            flags: tcp::TcpFlags { syn, ack: ackf, rst, fin },
            window, options,
        };
        prop_assert_eq!(tcp::TcpSegment::parse(&seg.to_bytes(src, dst), src, dst).unwrap(), seg);
    }

    #[test]
    fn udp_roundtrip(
        src in arb_addr(), dst in arb_addr(),
        sp in any::<u16>(), dp in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let d = udp::UdpDatagram { src_port: sp, dst_port: dp, payload };
        prop_assert_eq!(udp::UdpDatagram::parse(&d.to_bytes(src, dst), src, dst).unwrap(), d);
    }

    #[test]
    fn dns_roundtrip(
        id in any::<u16>(),
        qname in arb_name(),
        answers in proptest::collection::vec((arb_name(), any::<u32>(), arb_rdata()), 0..5),
        authority in proptest::collection::vec((arb_name(), any::<u32>(), arb_rdata()), 0..3),
        rcode in 0u8..16,
    ) {
        let q = dns::DnsMessage::aaaa_query(id, &qname);
        let mut r = dns::DnsMessage::response_to(&q, dns::Rcode::NoError);
        r.rcode = match rcode {
            0 => dns::Rcode::NoError, 1 => dns::Rcode::FormErr, 2 => dns::Rcode::ServFail,
            3 => dns::Rcode::NxDomain, 4 => dns::Rcode::NotImp, 5 => dns::Rcode::Refused,
            other => dns::Rcode::Other(other),
        };
        r.answers = answers.into_iter().map(|(name, ttl, rdata)| dns::Record { name, ttl, rdata }).collect();
        r.authority = authority.into_iter().map(|(name, ttl, rdata)| dns::Record { name, ttl, rdata }).collect();
        prop_assert_eq!(dns::DnsMessage::parse(&r.to_bytes()).unwrap(), r);
    }

    #[test]
    fn quic_roundtrip(
        version in 1u32..,
        dcid in proptest::collection::vec(any::<u8>(), 0..20),
        scid in proptest::collection::vec(any::<u8>(), 0..20),
        supported in proptest::collection::vec(1u32.., 1..8),
    ) {
        let init = quic::QuicPacket::Initial { version, dcid: dcid.clone(), scid: scid.clone() };
        prop_assert_eq!(quic::QuicPacket::parse(&init.to_bytes()).unwrap(), init);
        let vn = quic::QuicPacket::VersionNegotiation { dcid, scid, supported };
        prop_assert_eq!(quic::QuicPacket::parse(&vn.to_bytes()).unwrap(), vn);
    }

    #[test]
    fn full_packet_roundtrip(
        src in arb_addr(), dst in arb_addr(), hop in 1u8..,
        which in 0u8..3,
        payload in proptest::collection::vec(any::<u8>(), 0..128),
    ) {
        let transport = match which {
            0 => Transport::Icmpv6(icmpv6::Icmpv6::EchoRequest { ident: 1, seq: 2, payload }),
            1 => Transport::Tcp(tcp::TcpSegment::syn(80, 4000, 77)),
            _ => Transport::Udp(udp::UdpDatagram { src_port: 5, dst_port: 53, payload }),
        };
        let pkt = Packet { ipv6: Ipv6Header::new(src, dst, hop), transport };
        prop_assert_eq!(Packet::parse(&pkt.to_bytes()).unwrap(), pkt.canonical());
    }

    #[test]
    fn parse_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        // Fuzz-shaped robustness: arbitrary bytes must not panic.
        let _ = Packet::parse(&bytes);
        let _ = dns::DnsMessage::parse(&bytes);
        let _ = quic::QuicPacket::parse(&bytes);
    }
}
