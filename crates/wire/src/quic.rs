//! A minimal QUIC encoding (RFC 8999 invariants, RFC 9000 framing shape).
//!
//! The hitlist's UDP/443 probe is a QUIC Initial-like datagram; a QUIC
//! endpoint answers either with an Initial of its own or — when probed with
//! an unknown version, as ZMapv6's module deliberately does — with a
//! **Version Negotiation** packet, which is the success signal. Only those
//! two packet shapes are modelled.

use serde::{Deserialize, Serialize};

use crate::WireError;

/// The reserved version-negotiation-forcing version (any 0x?a?a?a?a is
/// reserved; ZMap-style probes use one to always elicit VN).
pub const FORCE_VN_VERSION: u32 = 0x1a2a_3a4a;

/// QUIC v1.
pub const QUIC_V1: u32 = 0x0000_0001;

/// A QUIC long-header packet, reduced to what the probe path needs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum QuicPacket {
    /// A client Initial(-like) probe.
    Initial {
        /// Version field; `FORCE_VN_VERSION` to force version negotiation.
        version: u32,
        /// Destination connection id (1..=20 bytes).
        dcid: Vec<u8>,
        /// Source connection id (0..=20 bytes).
        scid: Vec<u8>,
    },
    /// A server Version Negotiation packet.
    VersionNegotiation {
        /// Echoed destination connection id (the probe's SCID).
        dcid: Vec<u8>,
        /// Echoed source connection id (the probe's DCID).
        scid: Vec<u8>,
        /// Versions the server supports.
        supported: Vec<u32>,
    },
}

impl QuicPacket {
    /// Serializes to datagram payload bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(64);
        match self {
            QuicPacket::Initial { version, dcid, scid } => {
                assert!(dcid.len() <= 20 && scid.len() <= 20, "cid too long");
                b.push(0xc0); // long header, Initial type bits zeroed
                b.extend_from_slice(&version.to_be_bytes());
                b.push(dcid.len() as u8);
                b.extend_from_slice(dcid);
                b.push(scid.len() as u8);
                b.extend_from_slice(scid);
                // Minimal padding so the probe is not an empty datagram;
                // real Initials are padded to 1200 B, the model does not
                // need the bulk.
                b.extend_from_slice(&[0u8; 16]);
            }
            QuicPacket::VersionNegotiation { dcid, scid, supported } => {
                b.push(0x80); // long header, version negotiation
                b.extend_from_slice(&0u32.to_be_bytes()); // version == 0
                b.push(dcid.len() as u8);
                b.extend_from_slice(dcid);
                b.push(scid.len() as u8);
                b.extend_from_slice(scid);
                for v in supported {
                    b.extend_from_slice(&v.to_be_bytes());
                }
            }
        }
        b
    }

    /// Parses a datagram payload.
    pub fn parse(bytes: &[u8]) -> Result<QuicPacket, WireError> {
        if bytes.len() < 7 {
            return Err(WireError::Truncated);
        }
        if bytes[0] & 0x80 == 0 {
            return Err(WireError::Malformed("short header"));
        }
        let version = u32::from_be_bytes([bytes[1], bytes[2], bytes[3], bytes[4]]);
        let dcid_len = bytes[5] as usize;
        if dcid_len > 20 {
            return Err(WireError::Malformed("dcid length"));
        }
        let mut pos = 6;
        let dcid = bytes.get(pos..pos + dcid_len).ok_or(WireError::Truncated)?.to_vec();
        pos += dcid_len;
        let scid_len = *bytes.get(pos).ok_or(WireError::Truncated)? as usize;
        if scid_len > 20 {
            return Err(WireError::Malformed("scid length"));
        }
        pos += 1;
        let scid = bytes.get(pos..pos + scid_len).ok_or(WireError::Truncated)?.to_vec();
        pos += scid_len;
        if version == 0 {
            let rest = &bytes[pos..];
            if !rest.len().is_multiple_of(4) || rest.is_empty() {
                return Err(WireError::Malformed("vn version list"));
            }
            let supported = rest
                .chunks_exact(4)
                .map(|c| u32::from_be_bytes([c[0], c[1], c[2], c[3]]))
                .collect();
            Ok(QuicPacket::VersionNegotiation { dcid, scid, supported })
        } else {
            Ok(QuicPacket::Initial { version, dcid, scid })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_roundtrip() {
        let p = QuicPacket::Initial {
            version: FORCE_VN_VERSION,
            dcid: vec![1, 2, 3, 4, 5, 6, 7, 8],
            scid: vec![9, 9],
        };
        assert_eq!(QuicPacket::parse(&p.to_bytes()).unwrap(), p);
    }

    #[test]
    fn vn_roundtrip() {
        let p = QuicPacket::VersionNegotiation {
            dcid: vec![9, 9],
            scid: vec![1, 2, 3, 4, 5, 6, 7, 8],
            supported: vec![QUIC_V1, 0xff00_001d],
        };
        assert_eq!(QuicPacket::parse(&p.to_bytes()).unwrap(), p);
    }

    #[test]
    fn vn_echoes_cids_swapped() {
        // Contract used by the responder: VN must echo the probe's cids
        // swapped, which the scanner validates.
        let probe = QuicPacket::Initial {
            version: FORCE_VN_VERSION,
            dcid: vec![0xaa; 8],
            scid: vec![0xbb; 4],
        };
        if let QuicPacket::Initial { dcid, scid, .. } = &probe {
            let vn = QuicPacket::VersionNegotiation {
                dcid: scid.clone(),
                scid: dcid.clone(),
                supported: vec![QUIC_V1],
            };
            let parsed = QuicPacket::parse(&vn.to_bytes()).unwrap();
            match parsed {
                QuicPacket::VersionNegotiation { dcid: d, scid: s, .. } => {
                    assert_eq!(d, vec![0xbb; 4]);
                    assert_eq!(s, vec![0xaa; 8]);
                }
                _ => panic!("expected VN"),
            }
        }
    }

    #[test]
    fn short_header_rejected() {
        assert!(matches!(
            QuicPacket::parse(&[0x40, 0, 0, 0, 0, 0, 0]),
            Err(WireError::Malformed("short header"))
        ));
    }

    #[test]
    fn truncated_rejected() {
        let p = QuicPacket::Initial { version: QUIC_V1, dcid: vec![1; 20], scid: vec![] };
        let bytes = p.to_bytes();
        assert!(QuicPacket::parse(&bytes[..10]).is_err());
    }

    #[test]
    fn bad_vn_length_rejected() {
        let p =
            QuicPacket::VersionNegotiation { dcid: vec![], scid: vec![], supported: vec![QUIC_V1] };
        let mut bytes = p.to_bytes();
        bytes.push(0xff); // version list no longer a multiple of 4
        assert!(QuicPacket::parse(&bytes).is_err());
    }
}
