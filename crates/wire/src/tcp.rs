//! TCP segments (RFC 9293) with the option kinds fingerprinting reads.
//!
//! The paper's aliased-prefix fingerprinting (Sec. 5.1) compares five
//! features across addresses of a prefix: the order-preserving
//! **Optionstext**, window size, window scale, MSS, and iTTL. The segment
//! type here carries options as a *sequence* precisely so the option order
//! survives the roundtrip, and [`TcpSegment::optionstext`] renders the
//! canonical string.

use serde::{Deserialize, Serialize};
use sixdust_addr::Addr;

use crate::checksum;
use crate::WireError;

/// TCP header flags (subset sixdust uses).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TcpFlags {
    /// SYN.
    pub syn: bool,
    /// ACK.
    pub ack: bool,
    /// RST.
    pub rst: bool,
    /// FIN.
    pub fin: bool,
}

impl TcpFlags {
    const SYN: u8 = 0x02;
    const RST: u8 = 0x04;
    const ACK: u8 = 0x10;
    const FIN: u8 = 0x01;

    fn to_byte(self) -> u8 {
        let mut b = 0;
        if self.fin {
            b |= Self::FIN;
        }
        if self.syn {
            b |= Self::SYN;
        }
        if self.rst {
            b |= Self::RST;
        }
        if self.ack {
            b |= Self::ACK;
        }
        b
    }

    fn from_byte(b: u8) -> TcpFlags {
        TcpFlags {
            fin: b & Self::FIN != 0,
            syn: b & Self::SYN != 0,
            rst: b & Self::RST != 0,
            ack: b & Self::ACK != 0,
        }
    }
}

/// A TCP option.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TcpOption {
    /// End of option list (kind 0).
    EndOfList,
    /// No-operation padding (kind 1).
    Nop,
    /// Maximum segment size (kind 2).
    Mss(u16),
    /// Window scale shift (kind 3).
    WindowScale(u8),
    /// SACK permitted (kind 4).
    SackPermitted,
    /// Timestamps (kind 8): TSval, TSecr.
    Timestamps(u32, u32),
}

impl TcpOption {
    /// The short mnemonic used in the Optionstext fingerprint string,
    /// following the convention of the IPv6 Hitlist fingerprinting.
    pub fn mnemonic(self) -> &'static str {
        match self {
            TcpOption::EndOfList => "E",
            TcpOption::Nop => "N",
            TcpOption::Mss(_) => "M",
            TcpOption::WindowScale(_) => "W",
            TcpOption::SackPermitted => "S",
            TcpOption::Timestamps(..) => "T",
        }
    }
}

/// A TCP segment (header only; sixdust probes carry no TCP payload).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TcpSegment {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgement number.
    pub ack_no: u32,
    /// Flags.
    pub flags: TcpFlags,
    /// Receive window.
    pub window: u16,
    /// Options in wire order.
    pub options: Vec<TcpOption>,
}

impl TcpSegment {
    /// A SYN probe as the ZMapv6 `tcp_synscan` module sends it.
    pub fn syn(dst_port: u16, src_port: u16, seq: u32) -> TcpSegment {
        TcpSegment {
            src_port,
            dst_port,
            seq,
            ack_no: 0,
            flags: TcpFlags { syn: true, ..TcpFlags::default() },
            window: 65535,
            options: Vec::new(),
        }
    }

    /// A SYN-ACK answering `probe`, as a responsive host would.
    pub fn syn_ack(probe: &TcpSegment, seq: u32, window: u16) -> TcpSegment {
        TcpSegment {
            src_port: probe.dst_port,
            dst_port: probe.src_port,
            seq,
            ack_no: probe.seq.wrapping_add(1),
            flags: TcpFlags { syn: true, ack: true, ..TcpFlags::default() },
            window,
            options: Vec::new(),
        }
    }

    /// A RST answering `probe`, as a closed port would.
    pub fn rst(probe: &TcpSegment) -> TcpSegment {
        TcpSegment {
            src_port: probe.dst_port,
            dst_port: probe.src_port,
            seq: 0,
            ack_no: probe.seq.wrapping_add(1),
            flags: TcpFlags { rst: true, ack: true, ..TcpFlags::default() },
            window: 0,
            options: Vec::new(),
        }
    }

    /// Builder-style option append.
    pub fn with_option(mut self, opt: TcpOption) -> TcpSegment {
        self.options.push(opt);
        self
    }

    /// The order-preserving Optionstext fingerprint string, e.g. `MSTNW`
    /// for MSS, SACK-permitted, Timestamps, NOP, WindowScale.
    pub fn optionstext(&self) -> String {
        self.options.iter().map(|o| o.mnemonic()).collect()
    }

    /// The MSS option value, if present.
    pub fn mss(&self) -> Option<u16> {
        self.options.iter().find_map(|o| match o {
            TcpOption::Mss(v) => Some(*v),
            _ => None,
        })
    }

    /// The window-scale option value, if present.
    pub fn window_scale(&self) -> Option<u8> {
        self.options.iter().find_map(|o| match o {
            TcpOption::WindowScale(v) => Some(*v),
            _ => None,
        })
    }

    fn options_bytes(&self) -> Vec<u8> {
        let mut b = Vec::new();
        for opt in &self.options {
            match opt {
                TcpOption::EndOfList => b.push(0),
                TcpOption::Nop => b.push(1),
                TcpOption::Mss(v) => {
                    b.push(2);
                    b.push(4);
                    b.extend_from_slice(&v.to_be_bytes());
                }
                TcpOption::WindowScale(v) => {
                    b.push(3);
                    b.push(3);
                    b.push(*v);
                }
                TcpOption::SackPermitted => {
                    b.push(4);
                    b.push(2);
                }
                TcpOption::Timestamps(val, ecr) => {
                    b.push(8);
                    b.push(10);
                    b.extend_from_slice(&val.to_be_bytes());
                    b.extend_from_slice(&ecr.to_be_bytes());
                }
            }
        }
        // Pad to a multiple of 4 with NOPs (kept out of `options` on parse
        // only if they are trailing padding after EndOfList; plain NOPs are
        // significant for the fingerprint, so we pad with EOL + zeros).
        while b.len() % 4 != 0 {
            b.push(0);
        }
        b
    }

    /// Serializes with a valid pseudo-header checksum.
    pub fn to_bytes(&self, src: Addr, dst: Addr) -> Vec<u8> {
        let opts = self.options_bytes();
        let data_offset_words = 5 + opts.len() / 4;
        assert!(data_offset_words <= 15, "too many TCP options");
        let mut b = Vec::with_capacity(20 + opts.len());
        b.extend_from_slice(&self.src_port.to_be_bytes());
        b.extend_from_slice(&self.dst_port.to_be_bytes());
        b.extend_from_slice(&self.seq.to_be_bytes());
        b.extend_from_slice(&self.ack_no.to_be_bytes());
        b.push((data_offset_words as u8) << 4);
        b.push(self.flags.to_byte());
        b.extend_from_slice(&self.window.to_be_bytes());
        b.extend_from_slice(&[0, 0]); // checksum placeholder
        b.extend_from_slice(&[0, 0]); // urgent pointer
        b.extend_from_slice(&opts);
        let ck = checksum::transport_checksum(src, dst, 6, &b);
        b[16..18].copy_from_slice(&ck.to_be_bytes());
        b
    }

    /// Parses and checksum-verifies a segment.
    pub fn parse(bytes: &[u8], src: Addr, dst: Addr) -> Result<TcpSegment, WireError> {
        if bytes.len() < 20 {
            return Err(WireError::Truncated);
        }
        if !checksum::verify_transport_checksum(src, dst, 6, bytes) {
            return Err(WireError::BadChecksum);
        }
        let data_offset = usize::from(bytes[12] >> 4) * 4;
        if data_offset < 20 || bytes.len() < data_offset {
            return Err(WireError::Malformed("tcp data offset"));
        }
        let mut options = Vec::new();
        let mut i = 20;
        while i < data_offset {
            match bytes[i] {
                0 => break, // end of list; rest is padding
                1 => {
                    options.push(TcpOption::Nop);
                    i += 1;
                }
                kind => {
                    if i + 1 >= data_offset {
                        return Err(WireError::Malformed("tcp option length"));
                    }
                    let len = usize::from(bytes[i + 1]);
                    if len < 2 || i + len > data_offset {
                        return Err(WireError::Malformed("tcp option length"));
                    }
                    let body = &bytes[i + 2..i + len];
                    match (kind, body.len()) {
                        (2, 2) => {
                            options.push(TcpOption::Mss(u16::from_be_bytes([body[0], body[1]])))
                        }
                        (3, 1) => options.push(TcpOption::WindowScale(body[0])),
                        (4, 0) => options.push(TcpOption::SackPermitted),
                        (8, 8) => options.push(TcpOption::Timestamps(
                            u32::from_be_bytes([body[0], body[1], body[2], body[3]]),
                            u32::from_be_bytes([body[4], body[5], body[6], body[7]]),
                        )),
                        _ => return Err(WireError::Malformed("tcp option kind/len")),
                    }
                    i += len;
                }
            }
        }
        Ok(TcpSegment {
            src_port: u16::from_be_bytes([bytes[0], bytes[1]]),
            dst_port: u16::from_be_bytes([bytes[2], bytes[3]]),
            seq: u32::from_be_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]),
            ack_no: u32::from_be_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]),
            flags: TcpFlags::from_byte(bytes[13]),
            window: u16::from_be_bytes([bytes[14], bytes[15]]),
            options,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(s: &str) -> Addr {
        s.parse().unwrap()
    }

    fn roundtrip(seg: TcpSegment) {
        let src = a("2001:db8::1");
        let dst = a("2001:db8::2");
        let bytes = seg.to_bytes(src, dst);
        assert_eq!(TcpSegment::parse(&bytes, src, dst).unwrap(), seg);
    }

    #[test]
    fn bare_syn_roundtrip() {
        roundtrip(TcpSegment::syn(80, 40000, 12345));
    }

    #[test]
    fn options_roundtrip_in_order() {
        let seg = TcpSegment::syn(443, 1, 2)
            .with_option(TcpOption::Mss(1440))
            .with_option(TcpOption::SackPermitted)
            .with_option(TcpOption::Timestamps(111, 0))
            .with_option(TcpOption::Nop)
            .with_option(TcpOption::WindowScale(7));
        assert_eq!(seg.optionstext(), "MSTNW");
        roundtrip(seg);
    }

    #[test]
    fn accessors() {
        let seg = TcpSegment::syn(80, 1, 2)
            .with_option(TcpOption::Mss(1380))
            .with_option(TcpOption::WindowScale(9));
        assert_eq!(seg.mss(), Some(1380));
        assert_eq!(seg.window_scale(), Some(9));
        assert_eq!(TcpSegment::syn(80, 1, 2).mss(), None);
    }

    #[test]
    fn syn_ack_answers_probe() {
        let probe = TcpSegment::syn(80, 40000, 999);
        let sa = TcpSegment::syn_ack(&probe, 5, 29200);
        assert!(sa.flags.syn && sa.flags.ack && !sa.flags.rst);
        assert_eq!(sa.ack_no, 1000);
        assert_eq!(sa.src_port, 80);
        assert_eq!(sa.dst_port, 40000);
    }

    #[test]
    fn rst_answers_probe() {
        let probe = TcpSegment::syn(81, 40000, 7);
        let rst = TcpSegment::rst(&probe);
        assert!(rst.flags.rst && !rst.flags.syn);
        assert_eq!(rst.ack_no, 8);
    }

    #[test]
    fn bad_checksum_rejected() {
        let seg = TcpSegment::syn(80, 1, 2);
        let mut bytes = seg.to_bytes(a("::1"), a("::2"));
        bytes[4] ^= 0x40;
        assert_eq!(TcpSegment::parse(&bytes, a("::1"), a("::2")), Err(WireError::BadChecksum));
    }

    #[test]
    fn flags_byte_mapping() {
        let f = TcpFlags { syn: true, ack: true, rst: false, fin: true };
        assert_eq!(TcpFlags::from_byte(f.to_byte()), f);
    }
}
