//! Byte-level wire formats for sixdust.
//!
//! The scanner (`sixdust-scan`) builds real packet bytes and the simulated
//! Internet (`sixdust-net`) parses them and answers with real packet
//! bytes — the same contract a raw socket gives ZMapv6. This keeps every
//! classifier honest: the Great-Firewall false-positive path exists *because*
//! ZMap's UDP/53 module treats any parseable DNS answer as success, and that
//! behaviour is only reproducible if actual DNS messages travel both ways.
//!
//! Implemented formats:
//!
//! * [`Ipv6Header`] — fixed IPv6 header, RFC 8200.
//! * [`icmpv6`] — Echo Request/Reply, Time Exceeded, Packet Too Big,
//!   Destination Unreachable (RFC 4443), with pseudo-header checksums.
//! * [`tcp`] — segment header with the option kinds TCP fingerprinting
//!   needs (MSS, window scale, SACK-permitted, timestamps), RFC 9293.
//! * [`udp`] — datagram header, RFC 768.
//! * [`dns`] — query/response messages with A, AAAA, NS, MX, CNAME and
//!   TXT records, QNAME (de)compression, RFC 1035/3596.
//! * [`quic`] — just enough of RFC 8999/9000: a long-header Initial probe
//!   and Version Negotiation, which is what the hitlist's UDP/443 module
//!   sends and expects.
//! * [`fragment`] — the Fragment extension header with fragmentation and
//!   reassembly (the Too Big Trick's wire form).
//!
//! Design follows the smoltcp school: no `unsafe`, no exotic type-level
//! tricks, explicit error enums, every codec covered by roundtrip property
//! tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checksum;
pub mod dns;
mod error;
pub mod fragment;
pub mod icmpv6;
mod ipv6;
pub mod quic;
pub mod tcp;
pub mod udp;

pub use error::WireError;
pub use ipv6::{Ipv6Header, NextHeader, IPV6_HEADER_LEN, IPV6_MIN_MTU};

/// A fully parsed probe or response packet: IPv6 header plus transport.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Network-layer header.
    pub ipv6: Ipv6Header,
    /// Transport-layer payload.
    pub transport: Transport,
}

/// The transport payload of a [`Packet`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(clippy::large_enum_variant)]
pub enum Transport {
    /// An ICMPv6 message.
    Icmpv6(icmpv6::Icmpv6),
    /// A TCP segment.
    Tcp(tcp::TcpSegment),
    /// A UDP datagram with raw payload bytes.
    Udp(udp::UdpDatagram),
}

impl Packet {
    /// Serializes the packet to bytes, computing lengths and checksums.
    pub fn to_bytes(&self) -> Vec<u8> {
        let src = self.ipv6.src;
        let dst = self.ipv6.dst;
        let (next_header, body) = match &self.transport {
            Transport::Icmpv6(m) => (NextHeader::Icmpv6, m.to_bytes(src, dst)),
            Transport::Tcp(s) => (NextHeader::Tcp, s.to_bytes(src, dst)),
            Transport::Udp(d) => (NextHeader::Udp, d.to_bytes(src, dst)),
        };
        let mut hdr = self.ipv6;
        hdr.next_header = next_header;
        hdr.payload_len = body.len() as u16;
        let mut out = hdr.to_bytes().to_vec();
        out.extend_from_slice(&body);
        out
    }

    /// Returns the packet as it will appear after a serialize/parse
    /// roundtrip: `payload_len` and `next_header` are computed from the
    /// transport. Useful for equality assertions in tests.
    pub fn canonical(&self) -> Packet {
        let mut out = self.clone();
        let (nh, body) = match &self.transport {
            Transport::Icmpv6(m) => (NextHeader::Icmpv6, m.to_bytes(self.ipv6.src, self.ipv6.dst)),
            Transport::Tcp(s) => (NextHeader::Tcp, s.to_bytes(self.ipv6.src, self.ipv6.dst)),
            Transport::Udp(d) => (NextHeader::Udp, d.to_bytes(self.ipv6.src, self.ipv6.dst)),
        };
        out.ipv6.next_header = nh;
        out.ipv6.payload_len = body.len() as u16;
        out
    }

    /// Parses a packet from bytes, validating lengths and checksums.
    pub fn parse(bytes: &[u8]) -> Result<Packet, WireError> {
        let ipv6 = Ipv6Header::parse(bytes)?;
        let body = &bytes[IPV6_HEADER_LEN..];
        if body.len() < ipv6.payload_len as usize {
            return Err(WireError::Truncated);
        }
        let body = &body[..ipv6.payload_len as usize];
        let transport = match ipv6.next_header {
            NextHeader::Icmpv6 => {
                Transport::Icmpv6(icmpv6::Icmpv6::parse(body, ipv6.src, ipv6.dst)?)
            }
            NextHeader::Tcp => Transport::Tcp(tcp::TcpSegment::parse(body, ipv6.src, ipv6.dst)?),
            NextHeader::Udp => Transport::Udp(udp::UdpDatagram::parse(body, ipv6.src, ipv6.dst)?),
            NextHeader::Other(v) => return Err(WireError::UnsupportedNextHeader(v)),
        };
        Ok(Packet { ipv6, transport })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sixdust_addr::Addr;

    fn a(s: &str) -> Addr {
        s.parse().unwrap()
    }

    #[test]
    fn packet_roundtrip_icmp_echo() {
        let pkt = Packet {
            ipv6: Ipv6Header::new(a("2001:db8::1"), a("2001:db8::2"), 64),
            transport: Transport::Icmpv6(icmpv6::Icmpv6::EchoRequest {
                ident: 0x1234,
                seq: 7,
                payload: vec![0xab; 8],
            }),
        };
        let bytes = pkt.to_bytes();
        let back = Packet::parse(&bytes).unwrap();
        assert_eq!(back, pkt.canonical());
    }

    #[test]
    fn packet_roundtrip_tcp_syn() {
        let seg = tcp::TcpSegment::syn(443, 54321, 0xdead_beef)
            .with_option(tcp::TcpOption::Mss(1440))
            .with_option(tcp::TcpOption::WindowScale(7));
        let pkt = Packet {
            ipv6: Ipv6Header::new(a("2001:db8::1"), a("2001:db8::2"), 64),
            transport: Transport::Tcp(seg),
        };
        let back = Packet::parse(&pkt.to_bytes()).unwrap();
        assert_eq!(back, pkt.canonical());
    }

    #[test]
    fn corrupted_bytes_rejected() {
        let pkt = Packet {
            ipv6: Ipv6Header::new(a("::1"), a("::2"), 64),
            transport: Transport::Udp(udp::UdpDatagram {
                src_port: 1,
                dst_port: 53,
                payload: b"hi".to_vec(),
            }),
        };
        let mut bytes = pkt.to_bytes();
        // Flip a payload byte: the UDP checksum must catch it.
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        assert!(matches!(Packet::parse(&bytes), Err(WireError::BadChecksum)));
    }

    #[test]
    fn truncated_rejected() {
        let pkt = Packet {
            ipv6: Ipv6Header::new(a("::1"), a("::2"), 64),
            transport: Transport::Icmpv6(icmpv6::Icmpv6::EchoRequest {
                ident: 1,
                seq: 1,
                payload: vec![],
            }),
        };
        let bytes = pkt.to_bytes();
        assert!(matches!(Packet::parse(&bytes[..bytes.len() - 2]), Err(WireError::Truncated)));
        assert!(matches!(Packet::parse(&[0; 4]), Err(WireError::Truncated)));
    }
}
