//! The Internet checksum (RFC 1071) with the IPv6 pseudo-header (RFC 8200 §8.1).

use sixdust_addr::Addr;

/// Ones-complement sum accumulator.
#[derive(Debug, Default, Clone, Copy)]
pub struct Checksum {
    sum: u32,
}

impl Checksum {
    /// Fresh accumulator.
    pub fn new() -> Checksum {
        Checksum::default()
    }

    /// Feeds a 16-bit word.
    #[inline]
    pub fn add_u16(&mut self, v: u16) {
        self.sum += u32::from(v);
        // Fold eagerly so the u32 never overflows.
        if self.sum > 0xffff_0000 {
            self.sum = (self.sum & 0xffff) + (self.sum >> 16);
        }
    }

    /// Feeds a byte slice, padding an odd tail byte with zero per RFC 1071.
    pub fn add_bytes(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(2);
        for c in &mut chunks {
            self.add_u16(u16::from_be_bytes([c[0], c[1]]));
        }
        if let [tail] = chunks.remainder() {
            self.add_u16(u16::from_be_bytes([*tail, 0]));
        }
    }

    /// Feeds the IPv6 pseudo-header for the given upper-layer packet.
    pub fn add_pseudo_header(&mut self, src: Addr, dst: Addr, next_header: u8, len: u32) {
        self.add_bytes(&src.0.to_be_bytes());
        self.add_bytes(&dst.0.to_be_bytes());
        self.add_u16((len >> 16) as u16);
        self.add_u16(len as u16);
        self.add_u16(0);
        self.add_u16(u16::from(next_header));
    }

    /// Finalizes to the ones-complement of the folded sum.
    pub fn finish(self) -> u16 {
        let mut s = self.sum;
        while s > 0xffff {
            s = (s & 0xffff) + (s >> 16);
        }
        !(s as u16)
    }
}

/// Computes the transport checksum for `body` (with its checksum field
/// zeroed) under the IPv6 pseudo-header.
pub fn transport_checksum(src: Addr, dst: Addr, next_header: u8, body: &[u8]) -> u16 {
    let mut ck = Checksum::new();
    ck.add_pseudo_header(src, dst, next_header, body.len() as u32);
    ck.add_bytes(body);
    ck.finish()
}

/// Verifies a transport checksum: summing a correct packet *including* its
/// checksum field yields `0xffff`, so `finish()` yields zero.
pub fn verify_transport_checksum(src: Addr, dst: Addr, next_header: u8, body: &[u8]) -> bool {
    let mut ck = Checksum::new();
    ck.add_pseudo_header(src, dst, next_header, body.len() as u32);
    ck.add_bytes(body);
    ck.finish() == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(s: &str) -> Addr {
        s.parse().unwrap()
    }

    #[test]
    fn rfc1071_example() {
        // RFC 1071 worked example: 0001 f203 f4f5 f6f7 -> sum ddf2, cksum ~ddf2
        let mut ck = Checksum::new();
        ck.add_bytes(&[0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7]);
        assert_eq!(ck.finish(), !0xddf2);
    }

    #[test]
    fn odd_length_padded() {
        let mut ck1 = Checksum::new();
        ck1.add_bytes(&[0x12, 0x34, 0x56]);
        let mut ck2 = Checksum::new();
        ck2.add_bytes(&[0x12, 0x34, 0x56, 0x00]);
        assert_eq!(ck1.finish(), ck2.finish());
    }

    #[test]
    fn compute_then_verify() {
        let src = a("2001:db8::1");
        let dst = a("2001:db8::2");
        let mut body = vec![0x80, 0x00, 0x00, 0x00, 0x12, 0x34, 0x00, 0x01, 0xde, 0xad];
        let ck = transport_checksum(src, dst, 58, &body);
        body[2] = (ck >> 8) as u8;
        body[3] = ck as u8;
        assert!(verify_transport_checksum(src, dst, 58, &body));
        body[9] ^= 1;
        assert!(!verify_transport_checksum(src, dst, 58, &body));
    }

    #[test]
    fn checksum_depends_on_addresses() {
        let body = [0u8; 8];
        let c1 = transport_checksum(a("::1"), a("::2"), 17, &body);
        let c2 = transport_checksum(a("::1"), a("::3"), 17, &body);
        assert_ne!(c1, c2);
    }

    #[test]
    fn folding_never_overflows() {
        let mut ck = Checksum::new();
        for _ in 0..100_000 {
            ck.add_u16(0xffff);
        }
        // Sum of n 0xffff words folds back to 0xffff; complement is 0.
        assert_eq!(ck.finish(), 0);
    }
}
