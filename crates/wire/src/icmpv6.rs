//! ICMPv6 messages (RFC 4443).
//!
//! Beyond echo, sixdust needs exactly the error messages the paper's
//! methodology leans on: **Time Exceeded** (Yarrp traceroute reads router
//! addresses out of these), **Packet Too Big** (the Too Big Trick *sends*
//! these to seed a target's PMTU cache) and **Destination Unreachable**.
//! Echo replies can carry a fragment marker so the TBT can observe whether
//! a response came back fragmented without modelling full fragment
//! reassembly.

use serde::{Deserialize, Serialize};
use sixdust_addr::Addr;

use crate::checksum;
use crate::WireError;

const TYPE_DEST_UNREACH: u8 = 1;
const TYPE_PACKET_TOO_BIG: u8 = 2;
const TYPE_TIME_EXCEEDED: u8 = 3;
const TYPE_ECHO_REQUEST: u8 = 128;
const TYPE_ECHO_REPLY: u8 = 129;

/// An ICMPv6 message.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Icmpv6 {
    /// Echo Request (type 128).
    EchoRequest {
        /// Identifier, used by scanners to validate replies.
        ident: u16,
        /// Sequence number.
        seq: u16,
        /// Arbitrary payload; its length drives PMTU behaviour in the TBT.
        payload: Vec<u8>,
    },
    /// Echo Reply (type 129).
    EchoReply {
        /// Identifier copied from the request.
        ident: u16,
        /// Sequence copied from the request.
        seq: u16,
        /// Payload copied from the request.
        payload: Vec<u8>,
        /// Whether the reply arrived as IPv6 fragments. Real stacks signal
        /// this via a fragment extension header; sixdust flattens it into a
        /// flag (encoded in a reserved payload prefix byte on the wire)
        /// because the TBT only needs the boolean.
        fragmented: bool,
    },
    /// Destination Unreachable (type 1).
    DestUnreachable {
        /// Code (0 = no route, 1 = prohibited, 3 = address unreachable, 4 = port).
        code: u8,
    },
    /// Packet Too Big (type 2) carrying the constraining MTU.
    PacketTooBig {
        /// The next-hop MTU the sender should not exceed.
        mtu: u32,
    },
    /// Time Exceeded (type 3, code 0: hop limit) with the router-visible
    /// portion of the original packet (we keep just the original dst).
    TimeExceeded {
        /// Destination of the expired probe, recovered from the quoted packet.
        orig_dst: Addr,
    },
}

impl Icmpv6 {
    /// The wire type value.
    pub fn msg_type(&self) -> u8 {
        match self {
            Icmpv6::EchoRequest { .. } => TYPE_ECHO_REQUEST,
            Icmpv6::EchoReply { .. } => TYPE_ECHO_REPLY,
            Icmpv6::DestUnreachable { .. } => TYPE_DEST_UNREACH,
            Icmpv6::PacketTooBig { .. } => TYPE_PACKET_TOO_BIG,
            Icmpv6::TimeExceeded { .. } => TYPE_TIME_EXCEEDED,
        }
    }

    /// Serializes with a valid pseudo-header checksum.
    pub fn to_bytes(&self, src: Addr, dst: Addr) -> Vec<u8> {
        let mut b = vec![self.msg_type(), 0, 0, 0];
        match self {
            Icmpv6::EchoRequest { ident, seq, payload } => {
                b.extend_from_slice(&ident.to_be_bytes());
                b.extend_from_slice(&seq.to_be_bytes());
                b.extend_from_slice(payload);
            }
            Icmpv6::EchoReply { ident, seq, payload, fragmented } => {
                b.extend_from_slice(&ident.to_be_bytes());
                b.extend_from_slice(&seq.to_be_bytes());
                b.push(u8::from(*fragmented));
                b.extend_from_slice(payload);
            }
            Icmpv6::DestUnreachable { code } => {
                b[1] = *code;
                b.extend_from_slice(&[0; 4]); // unused field
            }
            Icmpv6::PacketTooBig { mtu } => {
                b.extend_from_slice(&mtu.to_be_bytes());
            }
            Icmpv6::TimeExceeded { orig_dst } => {
                b.extend_from_slice(&[0; 4]); // unused field
                                              // Quoted original packet: we embed the 16-byte original dst,
                                              // which is all Yarrp needs to correlate probe and reply.
                b.extend_from_slice(&orig_dst.0.to_be_bytes());
            }
        }
        let ck = checksum::transport_checksum(src, dst, 58, &b);
        b[2..4].copy_from_slice(&ck.to_be_bytes());
        b
    }

    /// Parses and checksum-verifies a message.
    pub fn parse(bytes: &[u8], src: Addr, dst: Addr) -> Result<Icmpv6, WireError> {
        if bytes.len() < 8 {
            return Err(WireError::Truncated);
        }
        if !checksum::verify_transport_checksum(src, dst, 58, bytes) {
            return Err(WireError::BadChecksum);
        }
        let code = bytes[1];
        match bytes[0] {
            TYPE_ECHO_REQUEST => Ok(Icmpv6::EchoRequest {
                ident: u16::from_be_bytes([bytes[4], bytes[5]]),
                seq: u16::from_be_bytes([bytes[6], bytes[7]]),
                payload: bytes[8..].to_vec(),
            }),
            TYPE_ECHO_REPLY => {
                if bytes.len() < 9 {
                    return Err(WireError::Truncated);
                }
                Ok(Icmpv6::EchoReply {
                    ident: u16::from_be_bytes([bytes[4], bytes[5]]),
                    seq: u16::from_be_bytes([bytes[6], bytes[7]]),
                    fragmented: match bytes[8] {
                        0 => false,
                        1 => true,
                        _ => return Err(WireError::Malformed("fragment flag")),
                    },
                    payload: bytes[9..].to_vec(),
                })
            }
            TYPE_DEST_UNREACH => Ok(Icmpv6::DestUnreachable { code }),
            TYPE_PACKET_TOO_BIG => Ok(Icmpv6::PacketTooBig {
                mtu: u32::from_be_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]),
            }),
            TYPE_TIME_EXCEEDED => {
                if bytes.len() < 24 {
                    return Err(WireError::Truncated);
                }
                Ok(Icmpv6::TimeExceeded {
                    orig_dst: Addr(u128::from_be_bytes(bytes[8..24].try_into().expect("16 bytes"))),
                })
            }
            _ => Err(WireError::Malformed("icmpv6 type")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(s: &str) -> Addr {
        s.parse().unwrap()
    }

    fn roundtrip(msg: Icmpv6) {
        let src = a("2001:db8::1");
        let dst = a("2001:db8::2");
        let bytes = msg.to_bytes(src, dst);
        assert_eq!(Icmpv6::parse(&bytes, src, dst).unwrap(), msg);
    }

    #[test]
    fn echo_request_roundtrip() {
        roundtrip(Icmpv6::EchoRequest { ident: 0xbeef, seq: 42, payload: vec![1, 2, 3, 4, 5] });
    }

    #[test]
    fn echo_reply_roundtrip_both_fragment_states() {
        for fragmented in [false, true] {
            roundtrip(Icmpv6::EchoReply { ident: 9, seq: 1, payload: vec![0; 1300], fragmented });
        }
    }

    #[test]
    fn error_messages_roundtrip() {
        roundtrip(Icmpv6::DestUnreachable { code: 4 });
        roundtrip(Icmpv6::PacketTooBig { mtu: 1280 });
        roundtrip(Icmpv6::TimeExceeded { orig_dst: a("2a02:26f0::dead") });
    }

    #[test]
    fn checksum_binds_addresses() {
        let msg = Icmpv6::EchoRequest { ident: 1, seq: 1, payload: vec![] };
        let bytes = msg.to_bytes(a("::1"), a("::2"));
        // Same bytes "received" with a different source: checksum must fail.
        assert_eq!(Icmpv6::parse(&bytes, a("::9"), a("::2")), Err(WireError::BadChecksum));
    }

    #[test]
    fn unknown_type_rejected() {
        let msg = Icmpv6::EchoRequest { ident: 1, seq: 1, payload: vec![] };
        let mut bytes = msg.to_bytes(a("::1"), a("::2"));
        bytes[0] = 200;
        // Checksum now also wrong; fix it up to isolate the type check.
        bytes[2] = 0;
        bytes[3] = 0;
        let ck = checksum::transport_checksum(a("::1"), a("::2"), 58, &bytes);
        bytes[2..4].copy_from_slice(&ck.to_be_bytes());
        assert_eq!(
            Icmpv6::parse(&bytes, a("::1"), a("::2")),
            Err(WireError::Malformed("icmpv6 type"))
        );
    }
}
