//! The IPv6 Fragment extension header (RFC 8200 §4.5) and datagram
//! fragmentation/reassembly.
//!
//! IPv6 routers never fragment — only the *source* does, after learning a
//! path MTU from a Packet Too Big message. That property is the entire
//! foundation of the Too Big Trick (Sec. 5.1): seeding one address's PMTU
//! cache makes its sibling addresses answer in fragments exactly when they
//! share a host. The semantic simulator keeps a `fragmented` flag; this
//! module provides the real wire form so the byte-level path can carry
//! actual fragments, with reassembly on the scanner side.

use sixdust_addr::Addr;

use crate::{Ipv6Header, NextHeader, WireError, IPV6_HEADER_LEN};

/// Length of the fragment extension header.
pub const FRAGMENT_HEADER_LEN: usize = 8;
/// Next-header value for the fragment header.
pub const FRAGMENT_NEXT_HEADER: u8 = 44;

/// A parsed fragment extension header.
///
/// ```
/// use sixdust_wire::fragment::{fragment, reassemble};
/// use sixdust_wire::{Ipv6Header, NextHeader, IPV6_HEADER_LEN};
/// let hdr = Ipv6Header::new("2001:db8::1".parse().unwrap(), "2001:db8::2".parse().unwrap(), 64);
/// let payload = vec![0xab; 2000];
/// let frags = fragment(&hdr, NextHeader::Udp, &payload, 1280, 7);
/// assert!(frags.len() >= 2);
/// let whole = reassemble(&frags).unwrap();
/// assert_eq!(&whole[IPV6_HEADER_LEN..], &payload[..]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FragmentHeader {
    /// The transport protocol of the reassembled packet.
    pub next_header: NextHeader,
    /// Offset of this fragment's payload in 8-octet units.
    pub offset_units: u16,
    /// Whether more fragments follow.
    pub more: bool,
    /// Identification value shared by all fragments of one datagram.
    pub ident: u32,
}

impl FragmentHeader {
    /// Serializes the 8-byte header.
    pub fn to_bytes(&self) -> [u8; FRAGMENT_HEADER_LEN] {
        let mut b = [0u8; FRAGMENT_HEADER_LEN];
        b[0] = self.next_header.value();
        // b[1] reserved
        let off_flags = (self.offset_units << 3) | u16::from(self.more);
        b[2..4].copy_from_slice(&off_flags.to_be_bytes());
        b[4..8].copy_from_slice(&self.ident.to_be_bytes());
        b
    }

    /// Parses from the start of `bytes`.
    pub fn parse(bytes: &[u8]) -> Result<FragmentHeader, WireError> {
        if bytes.len() < FRAGMENT_HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let off_flags = u16::from_be_bytes([bytes[2], bytes[3]]);
        Ok(FragmentHeader {
            next_header: NextHeader::from(bytes[0]),
            offset_units: off_flags >> 3,
            more: off_flags & 1 == 1,
            ident: u32::from_be_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]),
        })
    }
}

/// Splits an upper-layer payload into fragment *packets* honouring `mtu`
/// (the whole-packet limit). Every fragment carries the IPv6 header plus a
/// fragment header; all but the last set the M flag.
///
/// # Panics
///
/// Panics if `mtu` is too small to carry any payload
/// (`mtu <= IPV6_HEADER_LEN + FRAGMENT_HEADER_LEN`).
pub fn fragment(
    ipv6: &Ipv6Header,
    next_header: NextHeader,
    payload: &[u8],
    mtu: u32,
    ident: u32,
) -> Vec<Vec<u8>> {
    let headroom = IPV6_HEADER_LEN + FRAGMENT_HEADER_LEN;
    let capacity = (mtu as usize).saturating_sub(headroom);
    assert!(capacity > 0, "mtu {mtu} cannot carry fragments");
    // Non-final fragment payloads must be multiples of 8 octets.
    let chunk = capacity & !7;
    assert!(chunk > 0, "mtu {mtu} leaves no 8-octet chunk");
    let mut out = Vec::new();
    let mut offset = 0usize;
    while offset < payload.len() || (payload.is_empty() && out.is_empty()) {
        let end = (offset + chunk).min(payload.len());
        let more = end < payload.len();
        let fh = FragmentHeader { next_header, offset_units: (offset / 8) as u16, more, ident };
        let mut hdr = *ipv6;
        hdr.next_header = NextHeader::Other(FRAGMENT_NEXT_HEADER);
        hdr.payload_len = (FRAGMENT_HEADER_LEN + end - offset) as u16;
        let mut pkt = hdr.to_bytes().to_vec();
        pkt.extend_from_slice(&fh.to_bytes());
        pkt.extend_from_slice(&payload[offset..end]);
        out.push(pkt);
        if end == payload.len() {
            break;
        }
        offset = end;
    }
    out
}

/// Reassembles fragment packets (all of one datagram, any order) back into
/// a whole packet's bytes: the original IPv6 header (with the upper-layer
/// next header) followed by the reassembled payload.
pub fn reassemble(fragments: &[Vec<u8>]) -> Result<Vec<u8>, WireError> {
    if fragments.is_empty() {
        return Err(WireError::Truncated);
    }
    let mut parts: Vec<(u16, bool, Vec<u8>, Ipv6Header, NextHeader, u32)> = Vec::new();
    for f in fragments {
        let ipv6 = Ipv6Header::parse(f)?;
        if ipv6.next_header.value() != FRAGMENT_NEXT_HEADER {
            return Err(WireError::Malformed("not a fragment"));
        }
        let body = f
            .get(IPV6_HEADER_LEN..IPV6_HEADER_LEN + ipv6.payload_len as usize)
            .ok_or(WireError::Truncated)?;
        let fh = FragmentHeader::parse(body)?;
        parts.push((
            fh.offset_units,
            fh.more,
            body[FRAGMENT_HEADER_LEN..].to_vec(),
            ipv6,
            fh.next_header,
            fh.ident,
        ));
    }
    let ident = parts[0].5;
    if parts.iter().any(|p| p.5 != ident) {
        return Err(WireError::Malformed("mixed fragment idents"));
    }
    parts.sort_by_key(|p| p.0);
    // Validate contiguity and that only the last lacks the M flag.
    let mut expected_units = 0u16;
    for (i, (off, more, data, ..)) in parts.iter().enumerate() {
        if *off != expected_units {
            return Err(WireError::Malformed("fragment gap"));
        }
        let is_last = i == parts.len() - 1;
        if is_last == *more {
            return Err(WireError::Malformed("fragment M flag"));
        }
        if !is_last && data.len() % 8 != 0 {
            return Err(WireError::Malformed("fragment alignment"));
        }
        expected_units += (data.len() / 8) as u16;
    }
    let (_, _, _, ipv6, upper, _) = parts[0].clone();
    let payload: Vec<u8> = parts.iter().flat_map(|(_, _, d, ..)| d.iter().copied()).collect();
    let mut hdr = ipv6;
    hdr.next_header = upper;
    hdr.payload_len = payload.len() as u16;
    let mut out = hdr.to_bytes().to_vec();
    out.extend_from_slice(&payload);
    Ok(out)
}

/// Whether a raw packet is a fragment (cheap check for receive paths).
pub fn is_fragment(bytes: &[u8]) -> bool {
    bytes.len() >= IPV6_HEADER_LEN && bytes[6] == FRAGMENT_NEXT_HEADER
}

/// Extracts the fragment identification of a fragment packet.
pub fn fragment_ident(bytes: &[u8]) -> Option<u32> {
    if !is_fragment(bytes) {
        return None;
    }
    let body = bytes.get(IPV6_HEADER_LEN..IPV6_HEADER_LEN + FRAGMENT_HEADER_LEN)?;
    FragmentHeader::parse(body).ok().map(|fh| fh.ident)
}

/// Convenience for source addresses of raw packets (grouping fragments).
pub fn src_of(bytes: &[u8]) -> Option<Addr> {
    Ipv6Header::parse(bytes).ok().map(|h| h.src)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Packet;

    fn hdr() -> Ipv6Header {
        Ipv6Header::new("2001:db8::1".parse().unwrap(), "2001:db8::2".parse().unwrap(), 64)
    }

    #[test]
    fn header_roundtrip() {
        let fh = FragmentHeader {
            next_header: NextHeader::Icmpv6,
            offset_units: 0x123,
            more: true,
            ident: 0xdead_beef,
        };
        assert_eq!(FragmentHeader::parse(&fh.to_bytes()).unwrap(), fh);
        let last = FragmentHeader { more: false, ..fh };
        assert_eq!(FragmentHeader::parse(&last.to_bytes()).unwrap(), last);
    }

    #[test]
    fn fragment_then_reassemble() {
        let payload: Vec<u8> = (0..1300u16).map(|i| i as u8).collect();
        let frags = fragment(&hdr(), NextHeader::Icmpv6, &payload, 1280, 42);
        assert!(frags.len() >= 2, "1300 B over 1280 MTU needs 2 fragments");
        for f in &frags[..frags.len() - 1] {
            assert!(f.len() <= 1280, "fragment size {}", f.len());
        }
        assert!(frags.iter().all(|f| is_fragment(f)));
        assert!(frags.iter().all(|f| fragment_ident(f) == Some(42)));
        let whole = reassemble(&frags).unwrap();
        let parsed = Ipv6Header::parse(&whole).unwrap();
        assert_eq!(parsed.next_header, NextHeader::Icmpv6);
        assert_eq!(&whole[IPV6_HEADER_LEN..], &payload[..]);
    }

    #[test]
    fn out_of_order_reassembly() {
        let payload: Vec<u8> = (0..4000u16).map(|i| (i * 7) as u8).collect();
        let mut frags = fragment(&hdr(), NextHeader::Udp, &payload, 1280, 7);
        assert!(frags.len() >= 3);
        frags.reverse();
        let whole = reassemble(&frags).unwrap();
        assert_eq!(&whole[IPV6_HEADER_LEN..], &payload[..]);
    }

    #[test]
    fn gaps_rejected() {
        let payload = vec![0u8; 3000];
        let mut frags = fragment(&hdr(), NextHeader::Udp, &payload, 1280, 7);
        frags.remove(1);
        assert!(matches!(reassemble(&frags), Err(WireError::Malformed("fragment gap"))));
    }

    #[test]
    fn mixed_idents_rejected() {
        let payload = vec![0u8; 2000];
        let mut a = fragment(&hdr(), NextHeader::Udp, &payload, 1280, 1);
        let b = fragment(&hdr(), NextHeader::Udp, &payload, 1280, 2);
        a[1] = b[1].clone();
        assert!(reassemble(&a).is_err());
    }

    #[test]
    fn small_payload_single_fragment() {
        let frags = fragment(&hdr(), NextHeader::Icmpv6, &[1, 2, 3], 1280, 9);
        assert_eq!(frags.len(), 1);
        let fh = FragmentHeader::parse(&frags[0][IPV6_HEADER_LEN..]).unwrap();
        assert!(!fh.more);
        assert_eq!(fh.offset_units, 0);
    }

    #[test]
    fn reassembled_checksummed_packet_parses() {
        // A real ICMP echo reply, fragmented and reassembled, must parse
        // cleanly through the normal packet path.
        let reply = Packet {
            ipv6: hdr(),
            transport: crate::Transport::Icmpv6(crate::icmpv6::Icmpv6::EchoReply {
                ident: 1,
                seq: 2,
                payload: vec![0xab; 1300],
                fragmented: true,
            }),
        };
        let bytes = reply.to_bytes();
        let ipv6 = Ipv6Header::parse(&bytes).unwrap();
        let frags = fragment(&ipv6, NextHeader::Icmpv6, &bytes[IPV6_HEADER_LEN..], 1280, 3);
        let whole = reassemble(&frags).unwrap();
        let parsed = Packet::parse(&whole).unwrap();
        assert_eq!(parsed, reply.canonical());
    }
}
