//! UDP datagrams (RFC 768 over IPv6 per RFC 8200 §8.1).

use serde::{Deserialize, Serialize};
use sixdust_addr::Addr;

use crate::checksum;
use crate::WireError;

/// A UDP datagram: ports plus an opaque payload (DNS or QUIC bytes in
/// sixdust's probes).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct UdpDatagram {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

impl UdpDatagram {
    /// Serializes with a valid pseudo-header checksum (mandatory for IPv6).
    pub fn to_bytes(&self, src: Addr, dst: Addr) -> Vec<u8> {
        let len = 8 + self.payload.len();
        assert!(len <= usize::from(u16::MAX), "UDP payload too long");
        let mut b = Vec::with_capacity(len);
        b.extend_from_slice(&self.src_port.to_be_bytes());
        b.extend_from_slice(&self.dst_port.to_be_bytes());
        b.extend_from_slice(&(len as u16).to_be_bytes());
        b.extend_from_slice(&[0, 0]); // checksum placeholder
        b.extend_from_slice(&self.payload);
        let mut ck = checksum::transport_checksum(src, dst, 17, &b);
        // RFC 768: an all-zero computed checksum is transmitted as 0xffff.
        if ck == 0 {
            ck = 0xffff;
        }
        b[6..8].copy_from_slice(&ck.to_be_bytes());
        b
    }

    /// Parses and checksum-verifies a datagram.
    pub fn parse(bytes: &[u8], src: Addr, dst: Addr) -> Result<UdpDatagram, WireError> {
        if bytes.len() < 8 {
            return Err(WireError::Truncated);
        }
        let len = usize::from(u16::from_be_bytes([bytes[4], bytes[5]]));
        if len < 8 || bytes.len() < len {
            return Err(WireError::Truncated);
        }
        let bytes = &bytes[..len];
        // IPv6 forbids a zero UDP checksum (RFC 8200 §8.1).
        if bytes[6] == 0 && bytes[7] == 0 {
            return Err(WireError::Malformed("zero udp checksum"));
        }
        if !checksum::verify_transport_checksum(src, dst, 17, bytes) {
            // 0xffff-for-zero special case: re-check with the substitution.
            let mut copy = bytes.to_vec();
            copy[6] = 0;
            copy[7] = 0;
            if !(bytes[6] == 0xff
                && bytes[7] == 0xff
                && checksum::transport_checksum(src, dst, 17, &copy) == 0)
            {
                return Err(WireError::BadChecksum);
            }
        }
        Ok(UdpDatagram {
            src_port: u16::from_be_bytes([bytes[0], bytes[1]]),
            dst_port: u16::from_be_bytes([bytes[2], bytes[3]]),
            payload: bytes[8..].to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(s: &str) -> Addr {
        s.parse().unwrap()
    }

    #[test]
    fn roundtrip() {
        let d = UdpDatagram { src_port: 53535, dst_port: 53, payload: b"payload".to_vec() };
        let bytes = d.to_bytes(a("2001:db8::1"), a("2001:db8::2"));
        assert_eq!(UdpDatagram::parse(&bytes, a("2001:db8::1"), a("2001:db8::2")).unwrap(), d);
    }

    #[test]
    fn empty_payload() {
        let d = UdpDatagram { src_port: 1, dst_port: 2, payload: vec![] };
        let bytes = d.to_bytes(a("::1"), a("::2"));
        assert_eq!(bytes.len(), 8);
        assert_eq!(UdpDatagram::parse(&bytes, a("::1"), a("::2")).unwrap(), d);
    }

    #[test]
    fn zero_checksum_rejected() {
        let d = UdpDatagram { src_port: 1, dst_port: 2, payload: vec![9] };
        let mut bytes = d.to_bytes(a("::1"), a("::2"));
        bytes[6] = 0;
        bytes[7] = 0;
        assert_eq!(
            UdpDatagram::parse(&bytes, a("::1"), a("::2")),
            Err(WireError::Malformed("zero udp checksum"))
        );
    }

    #[test]
    fn corruption_detected() {
        let d = UdpDatagram { src_port: 1, dst_port: 2, payload: vec![1, 2, 3] };
        let mut bytes = d.to_bytes(a("::1"), a("::2"));
        bytes[9] ^= 0xf0;
        assert_eq!(UdpDatagram::parse(&bytes, a("::1"), a("::2")), Err(WireError::BadChecksum));
    }

    #[test]
    fn length_field_respected() {
        let d = UdpDatagram { src_port: 1, dst_port: 2, payload: vec![7; 4] };
        let mut bytes = d.to_bytes(a("::1"), a("::2"));
        bytes.extend_from_slice(&[0xde, 0xad]); // trailing junk beyond UDP length
        let parsed = UdpDatagram::parse(&bytes, a("::1"), a("::2")).unwrap();
        assert_eq!(parsed.payload, vec![7; 4]);
    }
}
