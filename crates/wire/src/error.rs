//! The wire-format error type.

use std::fmt;

/// Errors produced while parsing packet bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// Fewer bytes than the format requires.
    Truncated,
    /// A version or magic field did not match.
    BadVersion(u8),
    /// Checksum verification failed.
    BadChecksum,
    /// The IPv6 next-header value is not one we decode.
    UnsupportedNextHeader(u8),
    /// A field held a value the format forbids.
    Malformed(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "packet truncated"),
            WireError::BadVersion(v) => write!(f, "unexpected version {v}"),
            WireError::BadChecksum => write!(f, "checksum mismatch"),
            WireError::UnsupportedNextHeader(v) => write!(f, "unsupported next header {v}"),
            WireError::Malformed(what) => write!(f, "malformed field: {what}"),
        }
    }
}

impl std::error::Error for WireError {}
