//! The fixed IPv6 header (RFC 8200 §3).

use serde::{Deserialize, Serialize};
use sixdust_addr::Addr;

use crate::WireError;

/// Length of the fixed IPv6 header in bytes.
pub const IPV6_HEADER_LEN: usize = 40;

/// The minimum MTU every IPv6 link must support (RFC 8200 §5) — the floor
/// the Too Big Trick pushes targets toward.
pub const IPV6_MIN_MTU: u32 = 1280;

/// IPv6 next-header values sixdust decodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NextHeader {
    /// TCP (6).
    Tcp,
    /// UDP (17).
    Udp,
    /// ICMPv6 (58).
    Icmpv6,
    /// Anything else, preserved verbatim.
    Other(u8),
}

impl NextHeader {
    /// Protocol number as used on the wire and in pseudo-headers.
    pub fn value(self) -> u8 {
        match self {
            NextHeader::Tcp => 6,
            NextHeader::Udp => 17,
            NextHeader::Icmpv6 => 58,
            NextHeader::Other(v) => v,
        }
    }
}

impl From<u8> for NextHeader {
    fn from(v: u8) -> NextHeader {
        match v {
            6 => NextHeader::Tcp,
            17 => NextHeader::Udp,
            58 => NextHeader::Icmpv6,
            other => NextHeader::Other(other),
        }
    }
}

/// The fixed IPv6 header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ipv6Header {
    /// Traffic class (DSCP+ECN).
    pub traffic_class: u8,
    /// 20-bit flow label.
    pub flow_label: u32,
    /// Upper-layer payload length in bytes.
    pub payload_len: u16,
    /// Transport protocol selector.
    pub next_header: NextHeader,
    /// Hop limit (TTL); the iTTL fingerprint feature rounds the received
    /// value to the next power of two to recover this field's initial value.
    pub hop_limit: u8,
    /// Source address.
    pub src: Addr,
    /// Destination address.
    pub dst: Addr,
}

impl Ipv6Header {
    /// Convenience constructor with default class/flow, payload length and
    /// next-header filled in by [`crate::Packet::to_bytes`].
    pub fn new(src: Addr, dst: Addr, hop_limit: u8) -> Ipv6Header {
        Ipv6Header {
            traffic_class: 0,
            flow_label: 0,
            payload_len: 0,
            next_header: NextHeader::Other(59), // "no next header" placeholder
            hop_limit,
            src,
            dst,
        }
    }

    /// Serializes the 40-byte header.
    pub fn to_bytes(&self) -> [u8; IPV6_HEADER_LEN] {
        let mut b = [0u8; IPV6_HEADER_LEN];
        let vtf: u32 =
            (6u32 << 28) | (u32::from(self.traffic_class) << 20) | (self.flow_label & 0xf_ffff);
        b[0..4].copy_from_slice(&vtf.to_be_bytes());
        b[4..6].copy_from_slice(&self.payload_len.to_be_bytes());
        b[6] = self.next_header.value();
        b[7] = self.hop_limit;
        b[8..24].copy_from_slice(&self.src.0.to_be_bytes());
        b[24..40].copy_from_slice(&self.dst.0.to_be_bytes());
        b
    }

    /// Parses the header from the front of `bytes`.
    pub fn parse(bytes: &[u8]) -> Result<Ipv6Header, WireError> {
        if bytes.len() < IPV6_HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let vtf = u32::from_be_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
        let version = (vtf >> 28) as u8;
        if version != 6 {
            return Err(WireError::BadVersion(version));
        }
        Ok(Ipv6Header {
            traffic_class: ((vtf >> 20) & 0xff) as u8,
            flow_label: vtf & 0xf_ffff,
            payload_len: u16::from_be_bytes([bytes[4], bytes[5]]),
            next_header: NextHeader::from(bytes[6]),
            hop_limit: bytes[7],
            src: Addr(u128::from_be_bytes(bytes[8..24].try_into().expect("16 bytes"))),
            dst: Addr(u128::from_be_bytes(bytes[24..40].try_into().expect("16 bytes"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(s: &str) -> Addr {
        s.parse().unwrap()
    }

    #[test]
    fn roundtrip() {
        let h = Ipv6Header {
            traffic_class: 0xb8,
            flow_label: 0xabcde,
            payload_len: 1234,
            next_header: NextHeader::Udp,
            hop_limit: 64,
            src: a("2001:db8::1"),
            dst: a("2a00:1450::5"),
        };
        assert_eq!(Ipv6Header::parse(&h.to_bytes()).unwrap(), h);
    }

    #[test]
    fn version_enforced() {
        let h = Ipv6Header::new(a("::1"), a("::2"), 64);
        let mut bytes = h.to_bytes();
        bytes[0] = 0x45; // IPv4-looking
        assert_eq!(Ipv6Header::parse(&bytes), Err(WireError::BadVersion(4)));
    }

    #[test]
    fn truncation() {
        assert_eq!(Ipv6Header::parse(&[0x60; 39]), Err(WireError::Truncated));
    }

    #[test]
    fn next_header_mapping() {
        assert_eq!(NextHeader::from(6), NextHeader::Tcp);
        assert_eq!(NextHeader::from(17), NextHeader::Udp);
        assert_eq!(NextHeader::from(58), NextHeader::Icmpv6);
        assert_eq!(NextHeader::from(43), NextHeader::Other(43));
        assert_eq!(NextHeader::Other(43).value(), 43);
    }

    #[test]
    fn flow_label_masked_to_20_bits() {
        let mut h = Ipv6Header::new(a("::1"), a("::2"), 64);
        h.flow_label = 0xfff_ffff; // 28 bits
        let parsed = Ipv6Header::parse(&h.to_bytes()).unwrap();
        assert_eq!(parsed.flow_label, 0xf_ffff);
    }
}
