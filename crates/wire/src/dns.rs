//! DNS messages (RFC 1035, AAAA per RFC 3596).
//!
//! This codec backs three distinct behaviours from the paper:
//!
//! 1. the hitlist's UDP/53 probe (`AAAA? www.google.com`),
//! 2. the Great Firewall's injected answers — parseable, *valid-looking*
//!    responses carrying A records or Teredo AAAA records that ZMap счёт
//!    counts as success, and
//! 3. the controlled-domain validation experiment (unique-hash subdomains,
//!    REFUSED/SERVFAIL status codes, referrals).
//!
//! Names are encoded without compression (queries and injected answers are
//! tiny); compression pointers are *decoded* for completeness.

use serde::{Deserialize, Serialize};
use sixdust_addr::Addr;

use crate::WireError;

/// DNS response codes sixdust distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Rcode {
    /// NOERROR (0).
    NoError,
    /// FORMERR (1).
    FormErr,
    /// SERVFAIL (2).
    ServFail,
    /// NXDOMAIN (3).
    NxDomain,
    /// NOTIMP (4).
    NotImp,
    /// REFUSED (5) — what most remaining UDP/53 responders return in the
    /// paper's validation experiment (93.8 % "valid responses with status
    /// codes indicating errors").
    Refused,
    /// Any other code, preserved.
    Other(u8),
}

impl Rcode {
    fn value(self) -> u8 {
        match self {
            Rcode::NoError => 0,
            Rcode::FormErr => 1,
            Rcode::ServFail => 2,
            Rcode::NxDomain => 3,
            Rcode::NotImp => 4,
            Rcode::Refused => 5,
            Rcode::Other(v) => v & 0xf,
        }
    }

    fn from_value(v: u8) -> Rcode {
        match v & 0xf {
            0 => Rcode::NoError,
            1 => Rcode::FormErr,
            2 => Rcode::ServFail,
            3 => Rcode::NxDomain,
            4 => Rcode::NotImp,
            5 => Rcode::Refused,
            other => Rcode::Other(other),
        }
    }
}

/// Record types sixdust encodes/decodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RrType {
    /// A (1).
    A,
    /// NS (2).
    Ns,
    /// CNAME (5).
    Cname,
    /// MX (15).
    Mx,
    /// TXT (16).
    Txt,
    /// AAAA (28).
    Aaaa,
}

impl RrType {
    fn value(self) -> u16 {
        match self {
            RrType::A => 1,
            RrType::Ns => 2,
            RrType::Cname => 5,
            RrType::Mx => 15,
            RrType::Txt => 16,
            RrType::Aaaa => 28,
        }
    }

    fn from_value(v: u16) -> Option<RrType> {
        Some(match v {
            1 => RrType::A,
            2 => RrType::Ns,
            5 => RrType::Cname,
            15 => RrType::Mx,
            16 => RrType::Txt,
            28 => RrType::Aaaa,
            _ => return None,
        })
    }
}

/// The data of a resource record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Rdata {
    /// An IPv4 address — the GFW's early-era injections put these in
    /// response to AAAA queries.
    A(u32),
    /// An IPv6 address.
    Aaaa(Addr),
    /// A delegation name server.
    Ns(String),
    /// Mail exchanger: preference and host.
    Mx(u16, String),
    /// Canonical name.
    Cname(String),
    /// Freeform text.
    Txt(String),
}

impl Rdata {
    fn rr_type(&self) -> RrType {
        match self {
            Rdata::A(_) => RrType::A,
            Rdata::Aaaa(_) => RrType::Aaaa,
            Rdata::Ns(_) => RrType::Ns,
            Rdata::Mx(..) => RrType::Mx,
            Rdata::Cname(_) => RrType::Cname,
            Rdata::Txt(_) => RrType::Txt,
        }
    }
}

/// A resource record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Record {
    /// Owner name.
    pub name: String,
    /// Time to live.
    pub ttl: u32,
    /// Typed record data.
    pub rdata: Rdata,
}

/// A question.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Question {
    /// Queried name.
    pub qname: String,
    /// Queried type.
    pub qtype: RrType,
}

/// A DNS message.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DnsMessage {
    /// Transaction id.
    pub id: u16,
    /// Response bit.
    pub is_response: bool,
    /// Recursion desired.
    pub rd: bool,
    /// Recursion available.
    pub ra: bool,
    /// Authoritative answer.
    pub aa: bool,
    /// Response code.
    pub rcode: Rcode,
    /// Question section.
    pub questions: Vec<Question>,
    /// Answer section.
    pub answers: Vec<Record>,
    /// Authority section (referrals in the validation experiment).
    pub authority: Vec<Record>,
}

impl DnsMessage {
    /// An `AAAA?` query, the shape of the hitlist's UDP/53 probe.
    pub fn aaaa_query(id: u16, name: &str) -> DnsMessage {
        DnsMessage {
            id,
            is_response: false,
            rd: true,
            ra: false,
            aa: false,
            rcode: Rcode::NoError,
            questions: vec![Question { qname: name.to_string(), qtype: RrType::Aaaa }],
            answers: Vec::new(),
            authority: Vec::new(),
        }
    }

    /// A response skeleton answering `query`.
    pub fn response_to(query: &DnsMessage, rcode: Rcode) -> DnsMessage {
        DnsMessage {
            id: query.id,
            is_response: true,
            rd: query.rd,
            ra: true,
            aa: false,
            rcode,
            questions: query.questions.clone(),
            answers: Vec::new(),
            authority: Vec::new(),
        }
    }

    /// The first question's name, if any.
    pub fn qname(&self) -> Option<&str> {
        self.questions.first().map(|q| q.qname.as_str())
    }

    /// Serializes the message.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(64);
        b.extend_from_slice(&self.id.to_be_bytes());
        let mut flags: u16 = 0;
        if self.is_response {
            flags |= 0x8000;
        }
        if self.aa {
            flags |= 0x0400;
        }
        if self.rd {
            flags |= 0x0100;
        }
        if self.ra {
            flags |= 0x0080;
        }
        flags |= u16::from(self.rcode.value());
        b.extend_from_slice(&flags.to_be_bytes());
        b.extend_from_slice(&(self.questions.len() as u16).to_be_bytes());
        b.extend_from_slice(&(self.answers.len() as u16).to_be_bytes());
        b.extend_from_slice(&(self.authority.len() as u16).to_be_bytes());
        b.extend_from_slice(&0u16.to_be_bytes()); // no additional section
        for q in &self.questions {
            encode_name(&mut b, &q.qname);
            b.extend_from_slice(&q.qtype.value().to_be_bytes());
            b.extend_from_slice(&1u16.to_be_bytes()); // IN
        }
        for r in self.answers.iter().chain(self.authority.iter()) {
            encode_record(&mut b, r);
        }
        b
    }

    /// Parses a message.
    pub fn parse(bytes: &[u8]) -> Result<DnsMessage, WireError> {
        if bytes.len() < 12 {
            return Err(WireError::Truncated);
        }
        let id = u16::from_be_bytes([bytes[0], bytes[1]]);
        let flags = u16::from_be_bytes([bytes[2], bytes[3]]);
        let qd = u16::from_be_bytes([bytes[4], bytes[5]]) as usize;
        let an = u16::from_be_bytes([bytes[6], bytes[7]]) as usize;
        let ns = u16::from_be_bytes([bytes[8], bytes[9]]) as usize;
        let mut pos = 12;
        let mut questions = Vec::with_capacity(qd);
        for _ in 0..qd {
            let (qname, next) = decode_name(bytes, pos)?;
            pos = next;
            if bytes.len() < pos + 4 {
                return Err(WireError::Truncated);
            }
            let qtype_raw = u16::from_be_bytes([bytes[pos], bytes[pos + 1]]);
            let qtype =
                RrType::from_value(qtype_raw).ok_or(WireError::Malformed("unknown qtype"))?;
            pos += 4;
            questions.push(Question { qname, qtype });
        }
        let mut answers = Vec::with_capacity(an);
        for _ in 0..an {
            let (r, next) = decode_record(bytes, pos)?;
            pos = next;
            answers.push(r);
        }
        let mut authority = Vec::with_capacity(ns);
        for _ in 0..ns {
            let (r, next) = decode_record(bytes, pos)?;
            pos = next;
            authority.push(r);
        }
        Ok(DnsMessage {
            id,
            is_response: flags & 0x8000 != 0,
            aa: flags & 0x0400 != 0,
            rd: flags & 0x0100 != 0,
            ra: flags & 0x0080 != 0,
            rcode: Rcode::from_value(flags as u8),
            questions,
            answers,
            authority,
        })
    }
}

fn encode_name(out: &mut Vec<u8>, name: &str) {
    for label in name.split('.').filter(|l| !l.is_empty()) {
        let bytes = label.as_bytes();
        debug_assert!(bytes.len() < 64, "label too long: {label}");
        out.push(bytes.len() as u8);
        out.extend_from_slice(bytes);
    }
    out.push(0);
}

fn decode_name(bytes: &[u8], mut pos: usize) -> Result<(String, usize), WireError> {
    let mut labels: Vec<String> = Vec::new();
    let mut jumped = false;
    let mut end = pos;
    let mut hops = 0;
    loop {
        let len = *bytes.get(pos).ok_or(WireError::Truncated)? as usize;
        if len == 0 {
            if !jumped {
                end = pos + 1;
            }
            break;
        }
        if len & 0xc0 == 0xc0 {
            // Compression pointer.
            let lo = *bytes.get(pos + 1).ok_or(WireError::Truncated)? as usize;
            let target = ((len & 0x3f) << 8) | lo;
            if !jumped {
                end = pos + 2;
            }
            if target >= pos {
                return Err(WireError::Malformed("forward compression pointer"));
            }
            pos = target;
            jumped = true;
            hops += 1;
            if hops > 16 {
                return Err(WireError::Malformed("compression loop"));
            }
            continue;
        }
        if len >= 64 {
            return Err(WireError::Malformed("label length"));
        }
        let label = bytes.get(pos + 1..pos + 1 + len).ok_or(WireError::Truncated)?;
        labels.push(
            std::str::from_utf8(label).map_err(|_| WireError::Malformed("label utf8"))?.to_string(),
        );
        pos += 1 + len;
        if !jumped {
            end = pos + 1;
        }
    }
    Ok((labels.join("."), end))
}

fn encode_record(out: &mut Vec<u8>, r: &Record) {
    encode_name(out, &r.name);
    out.extend_from_slice(&r.rdata.rr_type().value().to_be_bytes());
    out.extend_from_slice(&1u16.to_be_bytes()); // IN
    out.extend_from_slice(&r.ttl.to_be_bytes());
    let mut rdata = Vec::new();
    match &r.rdata {
        Rdata::A(v4) => rdata.extend_from_slice(&v4.to_be_bytes()),
        Rdata::Aaaa(a6) => rdata.extend_from_slice(&a6.0.to_be_bytes()),
        Rdata::Ns(n) | Rdata::Cname(n) => encode_name(&mut rdata, n),
        Rdata::Mx(pref, n) => {
            rdata.extend_from_slice(&pref.to_be_bytes());
            encode_name(&mut rdata, n);
        }
        Rdata::Txt(t) => {
            let b = t.as_bytes();
            debug_assert!(b.len() < 256);
            rdata.push(b.len() as u8);
            rdata.extend_from_slice(b);
        }
    }
    out.extend_from_slice(&(rdata.len() as u16).to_be_bytes());
    out.extend_from_slice(&rdata);
}

fn decode_record(bytes: &[u8], pos: usize) -> Result<(Record, usize), WireError> {
    let (name, mut pos) = decode_name(bytes, pos)?;
    if bytes.len() < pos + 10 {
        return Err(WireError::Truncated);
    }
    let rtype = u16::from_be_bytes([bytes[pos], bytes[pos + 1]]);
    let ttl = u32::from_be_bytes([bytes[pos + 4], bytes[pos + 5], bytes[pos + 6], bytes[pos + 7]]);
    let rdlen = u16::from_be_bytes([bytes[pos + 8], bytes[pos + 9]]) as usize;
    pos += 10;
    let rdata_bytes = bytes.get(pos..pos + rdlen).ok_or(WireError::Truncated)?;
    let rtype = RrType::from_value(rtype).ok_or(WireError::Malformed("unknown rtype"))?;
    let rdata = match rtype {
        RrType::A => {
            if rdlen != 4 {
                return Err(WireError::Malformed("A rdlength"));
            }
            Rdata::A(u32::from_be_bytes(rdata_bytes.try_into().expect("4 bytes")))
        }
        RrType::Aaaa => {
            if rdlen != 16 {
                return Err(WireError::Malformed("AAAA rdlength"));
            }
            Rdata::Aaaa(Addr(u128::from_be_bytes(rdata_bytes.try_into().expect("16 bytes"))))
        }
        RrType::Ns => Rdata::Ns(decode_name(bytes, pos)?.0),
        RrType::Cname => Rdata::Cname(decode_name(bytes, pos)?.0),
        RrType::Mx => {
            if rdlen < 3 {
                return Err(WireError::Malformed("MX rdlength"));
            }
            let pref = u16::from_be_bytes([rdata_bytes[0], rdata_bytes[1]]);
            Rdata::Mx(pref, decode_name(bytes, pos + 2)?.0)
        }
        RrType::Txt => {
            if rdlen == 0 || rdata_bytes.len() < 1 + rdata_bytes[0] as usize {
                return Err(WireError::Malformed("TXT rdlength"));
            }
            let n = rdata_bytes[0] as usize;
            Rdata::Txt(
                std::str::from_utf8(&rdata_bytes[1..1 + n])
                    .map_err(|_| WireError::Malformed("TXT utf8"))?
                    .to_string(),
            )
        }
    };
    Ok((Record { name, ttl, rdata }, pos + rdlen))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_roundtrip() {
        let q = DnsMessage::aaaa_query(0x4242, "www.google.com");
        let back = DnsMessage::parse(&q.to_bytes()).unwrap();
        assert_eq!(back, q);
        assert_eq!(back.qname(), Some("www.google.com"));
        assert!(!back.is_response);
    }

    #[test]
    fn response_with_answers_roundtrip() {
        let q = DnsMessage::aaaa_query(7, "example.org");
        let mut r = DnsMessage::response_to(&q, Rcode::NoError);
        r.answers.push(Record {
            name: "example.org".into(),
            ttl: 300,
            rdata: Rdata::Aaaa("2001:db8::42".parse().unwrap()),
        });
        r.answers.push(Record {
            name: "example.org".into(),
            ttl: 300,
            rdata: Rdata::A(0x5db8_d822),
        });
        let back = DnsMessage::parse(&r.to_bytes()).unwrap();
        assert_eq!(back, r);
        assert!(back.is_response);
        assert_eq!(back.id, 7);
    }

    #[test]
    fn ns_mx_cname_txt_roundtrip() {
        let q = DnsMessage::aaaa_query(1, "x.test");
        let mut r = DnsMessage::response_to(&q, Rcode::NoError);
        r.answers.push(Record {
            name: "x.test".into(),
            ttl: 60,
            rdata: Rdata::Ns("ns1.x.test".into()),
        });
        r.answers.push(Record {
            name: "x.test".into(),
            ttl: 60,
            rdata: Rdata::Mx(10, "mail.x.test".into()),
        });
        r.answers.push(Record {
            name: "www.x.test".into(),
            ttl: 60,
            rdata: Rdata::Cname("x.test".into()),
        });
        r.answers.push(Record {
            name: "x.test".into(),
            ttl: 60,
            rdata: Rdata::Txt("v=spf1 -all".into()),
        });
        assert_eq!(DnsMessage::parse(&r.to_bytes()).unwrap(), r);
    }

    #[test]
    fn referral_in_authority() {
        let q = DnsMessage::aaaa_query(2, "sub.ours.test");
        let mut r = DnsMessage::response_to(&q, Rcode::NoError);
        r.authority.push(Record {
            name: "ours.test".into(),
            ttl: 3600,
            rdata: Rdata::Ns("a.root-servers.net".into()),
        });
        let back = DnsMessage::parse(&r.to_bytes()).unwrap();
        assert_eq!(back.authority.len(), 1);
        assert!(back.answers.is_empty());
    }

    #[test]
    fn rcodes_roundtrip() {
        for rc in [
            Rcode::NoError,
            Rcode::FormErr,
            Rcode::ServFail,
            Rcode::NxDomain,
            Rcode::NotImp,
            Rcode::Refused,
            Rcode::Other(9),
        ] {
            let q = DnsMessage::aaaa_query(1, "a.b");
            let r = DnsMessage::response_to(&q, rc);
            assert_eq!(DnsMessage::parse(&r.to_bytes()).unwrap().rcode, rc);
        }
    }

    #[test]
    fn compression_pointer_decoded() {
        // Hand-built response: question www.x.test, answer name is a
        // pointer back to the question name at offset 12.
        let q = DnsMessage::aaaa_query(3, "www.x.test");
        let mut bytes = q.to_bytes();
        // Patch ANCOUNT to 1.
        bytes[6..8].copy_from_slice(&1u16.to_be_bytes());
        bytes[2] |= 0x80; // QR
                          // Append record with compressed name.
        bytes.extend_from_slice(&[0xc0, 12]); // pointer to offset 12
        bytes.extend_from_slice(&28u16.to_be_bytes()); // AAAA
        bytes.extend_from_slice(&1u16.to_be_bytes()); // IN
        bytes.extend_from_slice(&300u32.to_be_bytes());
        bytes.extend_from_slice(&16u16.to_be_bytes());
        bytes.extend_from_slice(&"2001:db8::7".parse::<Addr>().unwrap().0.to_be_bytes());
        let back = DnsMessage::parse(&bytes).unwrap();
        assert_eq!(back.answers.len(), 1);
        assert_eq!(back.answers[0].name, "www.x.test");
        assert_eq!(back.answers[0].rdata, Rdata::Aaaa("2001:db8::7".parse().unwrap()));
    }

    #[test]
    fn malformed_rejected() {
        assert!(DnsMessage::parse(&[0; 5]).is_err());
        // Forward pointer must be rejected.
        let mut bytes = DnsMessage::aaaa_query(1, "a").to_bytes();
        bytes[12] = 0xc0;
        bytes[13] = 0xff;
        assert!(DnsMessage::parse(&bytes).is_err());
    }

    #[test]
    fn root_name() {
        let q = DnsMessage::aaaa_query(5, "");
        let back = DnsMessage::parse(&q.to_bytes()).unwrap();
        assert_eq!(back.qname(), Some(""));
    }
}
