//! Shared experiment context: one simulated Internet, one four-year
//! service run, one set of new-source evaluations — reused by every
//! table/figure so `all` does the expensive work exactly once.

use std::collections::HashSet;
use std::path::Path;
use std::sync::Arc;

use sixdust_addr::Addr;
use sixdust_alias::{candidates as alias_candidates, AliasDetector, DetectorConfig};
use sixdust_hitlist::{newsources, HitlistService, ServiceConfig, ServiceState, SourceEval};
use sixdust_net::{events, Day, FaultConfig, Internet, Scale};
use sixdust_scan::ScanConfig;
use sixdust_serve::{SnapshotStore, StoreConfig, TimedPublish};
use sixdust_telemetry::{
    FlightRecorder, Registry, SloEngine, TraceJournal, DEFAULT_SERIES_CAPACITY,
};
use sixdust_tga::instrumented_lineup;

/// The day Table 3's TGA seeds are taken ("responsive addresses in
/// December 2021"), 2021-12-01.
pub const TGA_SEED_DAY: Day = Day(1249);

/// The experiment context.
pub struct Ctx {
    /// The simulated Internet.
    pub net: Internet,
    /// The hitlist service, already run over the full window.
    pub svc: HitlistService,
    /// The scale everything was built at.
    pub scale: Scale,
    /// Metrics registry every pipeline stage reports into; dumped by
    /// `--telemetry <path>`.
    pub telemetry: Registry,
    /// Trace journal installed into the registry when `--trace <path>` is
    /// given; dumped as Chrome trace-event JSON.
    pub trace: Option<TraceJournal>,
    /// Serve-layer snapshot store, populated with every round of the
    /// service run when `--serve-report <path>` is given.
    pub serve: Option<Arc<SnapshotStore>>,
    /// The last [`PUBLISH_HISTORY`] service publishes, captured with full
    /// artifact payloads when `--mirrors` is given — the raw material for
    /// the chaos day's timed publish plan (oldest first).
    pub publish_history: Vec<TimedPublish>,
    new_sources: Option<Vec<SourceEval>>,
}

/// Service publishes retained for the chaos day's publish plan: one
/// pre-day baseline plus three mid-day publishes.
pub const PUBLISH_HISTORY: usize = 4;

/// Observability options for [`Ctx::build_resumable`], derived from the
/// `--series` / `--trace` command-line flags.
#[derive(Debug, Clone, Copy, Default)]
pub struct ObsOptions {
    /// Attach a per-round [`sixdust_telemetry::SeriesRecorder`] to the
    /// service before the four-year run.
    pub series: bool,
    /// Install a [`TraceJournal`] into the registry so the service, scan
    /// engine and alias detector emit spans.
    pub trace: bool,
    /// Attach a serve-layer [`SnapshotStore`] and publish every round of
    /// the service run into it.
    pub serve: bool,
    /// Build the full ops stack for the HTML dashboard: implies `series`
    /// and `serve`, and additionally attaches the standard
    /// [`SloEngine`] and a [`FlightRecorder`] to the service.
    pub dashboard: bool,
    /// Replay the serve day through a mirror tier (`--mirrors`): implies
    /// `serve` and additionally captures the tail of the publish history
    /// with full artifact payloads during the run.
    pub mirror: bool,
}

/// Rounds between crash-safe checkpoint saves during the service run.
pub const CHECKPOINT_EVERY_ROUNDS: usize = 64;

/// Runs the service with the historical cadence from the round after
/// `resume_from` (or day 0) to `until`, checkpointing atomically every
/// [`CHECKPOINT_EVERY_ROUNDS`] rounds and at the end when `checkpoint` is
/// given. Mirrors [`HitlistService::run`]'s cadence exactly so a resumed
/// run lands on the same round days an uninterrupted one would.
fn run_checkpointed(
    svc: &mut HitlistService,
    net: &Internet,
    resume_from: Option<Day>,
    until: Day,
    checkpoint: Option<&Path>,
    serve: Option<&SnapshotStore>,
    mut history: Option<&mut Vec<TimedPublish>>,
) {
    let mut day = match resume_from {
        Some(last) if last >= until => return,
        Some(last) => {
            let next = last.plus(events::scan_gap(last));
            if next > until {
                until
            } else {
                next
            }
        }
        None => Day(0),
    };
    let mut rounds_since_save = 0usize;
    loop {
        svc.run_round(net, day);
        if let Some(store) = serve {
            store.publish_service(svc, u64::from(day.0), &day.to_date());
        }
        if let Some(h) = history.as_deref_mut() {
            // Rolling tail of the publish history (artifacts included) —
            // `at_us` is a placeholder the chaos replay reschedules.
            h.push(TimedPublish::from_service(svc, 0, u64::from(day.0), &day.to_date()));
            if h.len() > PUBLISH_HISTORY {
                h.remove(0);
            }
        }
        rounds_since_save += 1;
        if let Some(path) = checkpoint {
            if rounds_since_save >= CHECKPOINT_EVERY_ROUNDS || day >= until {
                if let Err(e) = ServiceState::capture(svc).save_atomic(path) {
                    eprintln!("[ctx] checkpoint save failed: {e}");
                } else {
                    rounds_since_save = 0;
                }
            }
        }
        if day >= until {
            break;
        }
        let next = day.plus(events::scan_gap(day));
        day = if next > until { until } else { next };
    }
}

impl Ctx {
    /// Builds the Internet and runs the service from launch to the paper's
    /// final day — the expensive step (~minutes at paper scale) — with
    /// observability options plus an optional crash-safe checkpoint file.
    ///
    /// With a checkpoint path the four-year run saves its state atomically
    /// every [`CHECKPOINT_EVERY_ROUNDS`] rounds and at completion; if a
    /// valid checkpoint already exists, the service resumes from the day
    /// after its last recorded round instead of replaying from day 0. A
    /// corrupt or version-incompatible checkpoint is reported and ignored
    /// (fresh start) — never trusted, never fatal.
    pub fn build_resumable(scale: Scale, opts: ObsOptions, checkpoint: Option<&Path>) -> Ctx {
        let telemetry = Registry::new();
        let trace = opts.trace.then(TraceJournal::new);
        if let Some(journal) = &trace {
            telemetry.install_tracer(journal);
        }
        let net = Internet::build(scale)
            .with_faults(FaultConfig::lossless().with_drop_permille(2))
            .with_telemetry(&telemetry);
        let mut days = Day::SNAPSHOTS.to_vec();
        days.push(TGA_SEED_DAY);
        days.sort_unstable();
        let config = ServiceConfig::builder().snapshot_days(days).build();

        let mut resume_from: Option<Day> = None;
        let mut svc = match checkpoint.filter(|p| p.exists()) {
            Some(path) => match ServiceState::load(path) {
                Ok(state) => {
                    let last = state.rounds.last().map(|r| r.day);
                    eprintln!(
                        "[ctx] resuming from checkpoint {} ({} rounds, day {:?})",
                        path.display(),
                        state.rounds.len(),
                        last
                    );
                    resume_from = last;
                    state.restore(config.clone())
                }
                Err(e) => {
                    eprintln!("[ctx] ignoring unusable checkpoint {}: {e}", path.display());
                    HitlistService::new(config.clone())
                }
            },
            None => HitlistService::new(config.clone()),
        };
        svc = svc.with_telemetry(telemetry.clone());
        if opts.series || opts.dashboard {
            svc = svc.with_series(DEFAULT_SERIES_CAPACITY);
        }
        if opts.dashboard {
            svc = svc.with_slo(SloEngine::standard()).with_flight(FlightRecorder::new());
        }
        let serve = (opts.serve || opts.dashboard || opts.mirror).then(|| {
            Arc::new(SnapshotStore::new(StoreConfig::default()).with_telemetry(telemetry.clone()))
        });
        let mut publish_history: Vec<TimedPublish> = Vec::new();
        eprintln!(
            "[ctx] running four-year service (addr 1/{}, entity 1/{}, seed {:#x})…",
            scale.addr_div, scale.entity_div, scale.seed
        );
        let t0 = std::time::Instant::now();
        run_checkpointed(
            &mut svc,
            &net,
            resume_from,
            Day::PAPER_END,
            checkpoint,
            serve.as_deref(),
            opts.mirror.then_some(&mut publish_history),
        );
        if let Some(store) = &serve {
            // A fully resumed run executes zero new rounds; publish the
            // restored final state once so the store is never empty.
            if store.current_round().is_none() {
                let day = svc.rounds().last().map(|r| r.day).unwrap_or(Day(0));
                store.publish_service(&svc, u64::from(day.0), &day.to_date());
                if opts.mirror {
                    publish_history.push(TimedPublish::from_service(
                        &svc,
                        0,
                        u64::from(day.0),
                        &day.to_date(),
                    ));
                }
            }
        }
        eprintln!(
            "[ctx] service done: {} rounds, input {}, responsive {} ({:.1}s)",
            svc.rounds().len(),
            svc.rounds().last().map(|r| r.input_total).unwrap_or(0),
            svc.rounds().last().map(|r| r.total_cleaned).unwrap_or(0),
            t0.elapsed().as_secs_f64()
        );
        Ctx { net, svc, scale, telemetry, trace, serve, publish_history, new_sources: None }
    }

    /// Builds the chaos replay inputs from the captured publish history:
    /// a fresh origin store seeded with the *oldest* captured publish as
    /// the pre-day baseline, plus the remaining publishes rescheduled
    /// evenly across the serve day (1/(n+1), 2/(n+1), … of `day_micros`).
    /// With an empty history (no rounds ran) the origin starts empty and
    /// the plan is empty — the replay still completes, serving nothing.
    pub fn chaos_origin_and_plan(
        &self,
        day_micros: u64,
    ) -> (Arc<SnapshotStore>, Vec<TimedPublish>) {
        let origin = Arc::new(SnapshotStore::new(StoreConfig::default()));
        let mut history = self.publish_history.clone();
        if history.is_empty() {
            return (origin, Vec::new());
        }
        let baseline = history.remove(0);
        origin.publish_round(baseline.round, &baseline.date, baseline.artifacts);
        let n = history.len() as u64;
        let plan = history
            .into_iter()
            .enumerate()
            .map(|(i, mut p)| {
                p.at_us = day_micros / (n + 1) * (i as u64 + 1);
                p
            })
            .collect();
        (origin, plan)
    }

    /// The snapshot at (or just after) a requested day.
    pub fn snapshot_at(&self, day: Day) -> &sixdust_hitlist::Snapshot {
        self.svc
            .snapshots()
            .iter()
            .find(|s| s.day >= day)
            .or_else(|| self.svc.snapshots().last())
            .expect("service retained snapshots")
    }

    /// The TGA seed corpus: the cleaned responsive set of December 2021.
    pub fn tga_seeds(&self) -> Vec<Addr> {
        self.snapshot_at(TGA_SEED_DAY).cleaned_total().to_addr_vec()
    }

    /// The Sec. 6 new-source evaluations (computed once, cached).
    pub fn new_sources(&mut self) -> &[SourceEval] {
        if self.new_sources.is_none() {
            self.new_sources = Some(self.eval_new_sources());
        }
        self.new_sources.as_deref().expect("just computed")
    }

    fn eval_new_sources(&self) -> Vec<SourceEval> {
        let net = &self.net;
        let day = Day::PAPER_END;
        let scan_days = [day, day.plus(7), day.plus(14), day.plus(21)];
        let cfg = ScanConfig::default();
        let known: &HashSet<Addr> = self.svc.input();
        let seeds = self.tga_seeds();
        eprintln!("[ctx] evaluating new sources ({} TGA seeds)…", seeds.len());

        // Collect every candidate list first so one fresh alias-detection
        // pass can cover them all — the paper runs the hitlist's MAPD over
        // the new candidates before scanning (this is what caught 6Tree's
        // 8.3 M-address Akamai expansion).
        let passive_all = newsources::passive_sources(net, day);
        let passive_new: Vec<Addr> =
            passive_all.iter().filter(|a| !known.contains(a)).copied().collect();
        let pool: Vec<Addr> = self
            .svc
            .unresponsive_pool()
            .iter()
            .filter(|a| !self.svc.gfw_impacted().contains(*a))
            .copied()
            .collect();
        let mut tga_lists: Vec<(&'static str, Vec<Addr>)> = Vec::new();
        for (generator, budget) in instrumented_lineup(self.scale.addr_div, &self.telemetry) {
            let t0 = std::time::Instant::now();
            let candidates = generator.generate(&seeds, budget);
            eprintln!(
                "[ctx] {} generated {} candidates ({:.1}s)",
                generator.name(),
                candidates.len(),
                t0.elapsed().as_secs_f64()
            );
            tga_lists.push((generator.name(), candidates));
        }

        // Fresh multi-level alias detection over all candidates, merged
        // with the service's accumulated labels.
        let mut all_candidates: Vec<Addr> = passive_new.clone();
        all_candidates.extend(pool.iter().copied());
        for (_, list) in &tga_lists {
            all_candidates.extend(list.iter().copied());
        }
        let mut detector = AliasDetector::new(DetectorConfig::default());
        detector.set_telemetry(self.telemetry.clone());
        let cands = alias_candidates(net, &all_candidates, 100);
        detector.run_round(net, &cands, day);
        let mut aliased = self.svc.aliased().clone();
        aliased.extend_from(&detector.aliased());
        eprintln!(
            "[ctx] pre-scan alias detection: {} candidate prefixes, {} labels total",
            cands.len(),
            aliased.len()
        );

        let mut evals = Vec::new();
        evals.push(newsources::evaluate_source(
            net,
            "passive",
            &passive_new,
            &aliased,
            &scan_days,
            &cfg,
        ));
        // The pool is only scanned once for ethical reasons (Sec. 6.2).
        evals.push(newsources::evaluate_source(
            net,
            "unresponsive",
            &pool,
            &aliased,
            &scan_days[..1],
            &cfg,
        ));
        for (name, candidates) in &tga_lists {
            evals.push(newsources::evaluate_source(
                net, name, candidates, &aliased, &scan_days, &cfg,
            ));
        }
        evals
    }
}
