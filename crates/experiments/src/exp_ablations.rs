//! Quality ablations of the design choices DESIGN.md §7 calls out.
//!
//! Each ablation removes or re-parameterizes one mechanism of the pipeline
//! and reports the *measurement quality* consequence (runtime costs are
//! covered by `sixdust-bench`'s `ablations` bench):
//!
//! 1. alias detection without the three-round merge under packet loss,
//! 2. the GFW filter switched off (what the service would still publish),
//! 3. the 30-day filter switched off (scan-load growth),
//! 4. distance clustering parameter sweep,
//! 5. the three-round merge again, but under *bursty* Gilbert–Elliott
//!    loss (chaos profile) instead of steady thinning.

use serde_json::json;
use sixdust_addr::{Addr, Prefix};
use sixdust_alias::{AliasDetector, DetectorConfig};
use sixdust_analysis::{human, pct, TextTable};
use sixdust_hitlist::{HitlistService, ServiceConfig};
use sixdust_net::{events, Day, FaultConfig, GilbertElliott, Internet, Protocol, Scale};
use sixdust_tga::{DistanceClustering, TargetGenerator};

use crate::context::Ctx;
use crate::ExpOutput;

/// A smaller, lossier world for the ablation service runs (they re-run the
/// pipeline several times, so the full four-year context would be wasteful).
fn ablation_net(drop_permille: u32) -> Internet {
    Internet::build(Scale::tiny())
        .with_faults(FaultConfig::lossless().with_drop_permille(drop_permille))
}

/// Ablation 1: the alias detector's merge window vs single-round labels
/// under increasing loss.
fn merge_window(out: &mut String, json_rows: &mut Vec<serde_json::Value>) {
    out.push_str("\n-- ablation 1: alias-detection merge window under loss --\n");
    out.push_str("(share of truly aliased prefixes labeled; single round vs 3-round merge)\n\n");
    let mut t = TextTable::new(&["loss", "single round", "merged (paper)", "gain"]);
    for drop_permille in [0u32, 30, 60, 120] {
        let net = ablation_net(drop_permille);
        let day = Day(400);
        let truth: Vec<Prefix> = net
            .population()
            .aliased_groups(day)
            .filter(|g| g.protos.contains(Protocol::Icmp))
            .map(|g| g.prefix)
            .take(250)
            .collect();
        let mut single = AliasDetector::new(DetectorConfig::builder().merge_rounds(0).build());
        single.run_round(&net, &truth, day);
        let single_hits = truth.iter().filter(|p| single.aliased().contains_exact(**p)).count();
        let mut merged = AliasDetector::new(DetectorConfig::default());
        for gap in 0..4u32 {
            merged.run_round(&net, &truth, day.plus(gap));
        }
        let merged_hits = truth.iter().filter(|p| merged.aliased().contains_exact(**p)).count();
        t.row(vec![
            format!("{:.1} %", drop_permille as f64 / 10.0),
            pct(single_hits as f64 / truth.len() as f64),
            pct(merged_hits as f64 / truth.len() as f64),
            format!("+{}", merged_hits.saturating_sub(single_hits)),
        ]);
        json_rows.push(json!({ "ablation": "merge_window", "loss_permille": drop_permille,
            "single": single_hits, "merged": merged_hits, "truth": truth.len() }));
    }
    out.push_str(&t.render());
}

/// Ablation 2: GFW filter off — what the published UDP/53 series looks
/// like with and without the paper's contribution.
fn gfw_filter(out: &mut String, json_rows: &mut Vec<serde_json::Value>) {
    out.push_str("\n-- ablation 2: the GFW cleaning filter --\n");
    let net = ablation_net(2);
    let start = Day(events::GFW_ERA1.0 .0 - 40);
    let end = events::GFW_ERA1.0.plus(20);
    let idx53 = Protocol::ALL.iter().position(|p| *p == Protocol::Udp53).expect("udp53");
    let run = |gfw_filter_from: Option<Day>| {
        let mut svc = HitlistService::new(
            ServiceConfig::builder().gfw_filter_from(gfw_filter_from).traceroute_cap(800).build(),
        );
        svc.run(&net, start, end);
        svc.rounds().iter().map(|r| r.published[idx53]).max().unwrap_or(0)
    };
    let without = run(None);
    let with = run(Some(Day(0)));
    out.push_str(&format!(
        "peak published UDP/53 during era 1:\n  filter off: {}\n  filter on:  {}\n  \
         pollution removed: {} ({:.0}x)\n",
        human(without),
        human(with),
        human(without.saturating_sub(with)),
        without as f64 / with.max(1) as f64,
    ));
    json_rows.push(json!({ "ablation": "gfw_filter", "peak_without": without, "peak_with": with }));
}

/// Ablation 3: the 30-day filter off — scan-load growth.
fn thirty_day_filter(out: &mut String, json_rows: &mut Vec<serde_json::Value>) {
    out.push_str("\n-- ablation 3: the 30-day unresponsive filter --\n");
    let net = ablation_net(2);
    let run = |window: u32| {
        let mut svc = HitlistService::new(ServiceConfig::builder().traceroute_cap(800).build());
        // A very large window disables the filter in practice.
        svc.set_unresponsive_window(window);
        svc.run(&net, Day(0), Day(90));
        svc.rounds().last().map(|r| r.targets).unwrap_or(0)
    };
    let with = run(30);
    let without = run(100_000);
    out.push_str(&format!(
        "scan targets after 90 days:\n  filter on (30 d): {}\n  filter off:       {}\n  \
         load factor: {:.1}x (the paper: the filter 'reduces the required scan load drastically')\n",
        human(with as u64),
        human(without as u64),
        without as f64 / with.max(1) as f64,
    ));
    json_rows.push(
        json!({ "ablation": "thirty_day", "targets_with": with, "targets_without": without }),
    );
}

/// Ablation 4: distance clustering parameters.
fn dc_params(ctx: &Ctx, out: &mut String, json_rows: &mut Vec<serde_json::Value>) {
    out.push_str("\n-- ablation 4: distance clustering parameters --\n");
    let day = Day(1249);
    let seeds: Vec<Addr> = {
        let mut s: Vec<Addr> = ctx
            .net
            .population()
            .enumerate_responsive(day)
            .into_iter()
            .map(|(a, ..)| a)
            .filter(|a| !ctx.net.population().is_dense_member(*a))
            .collect();
        s.extend(ctx.net.population().dense_visible(day));
        s.sort_unstable();
        s.dedup();
        s
    };
    let truth: std::collections::HashSet<Addr> =
        ctx.net.population().enumerate_responsive(day).into_iter().map(|(a, ..)| a).collect();
    let mut t = TextTable::new(&["min cluster", "max gap", "generated", "hits", "hit rate"]);
    for (min_cluster, max_gap) in [(10usize, 64u128), (10, 16), (10, 256), (4, 64), (25, 64)] {
        let dc = DistanceClustering { min_cluster, max_gap };
        let generated = dc.generate(&seeds, 30_000);
        let hits = generated.iter().filter(|a| truth.contains(a)).count();
        t.row(vec![
            min_cluster.to_string(),
            max_gap.to_string(),
            generated.len().to_string(),
            hits.to_string(),
            pct(hits as f64 / generated.len().max(1) as f64),
        ]);
        json_rows.push(json!({ "ablation": "dc_params", "min_cluster": min_cluster,
            "max_gap": max_gap, "generated": generated.len(), "hits": hits }));
    }
    t.render().lines().for_each(|l| {
        out.push_str(l);
        out.push('\n');
    });
    out.push_str(
        "(the paper's 10/64 sits near the precision knee: wider gaps add volume, not hits)\n",
    );
}

/// Ablation 5: the merge window under *bursty* loss. Steady thinning
/// (ablation 1) favors any retry scheme; a Gilbert–Elliott channel that
/// spends whole days in a Bad state is the harder case — if a burst
/// covers the entire merge window, no amount of merging helps, so the
/// gain here bounds what graceful degradation can recover.
fn chaos_merge(out: &mut String, json_rows: &mut Vec<serde_json::Value>) {
    out.push_str(
        "\n-- ablation 5: alias merge window under bursty (Gilbert\u{2013}Elliott) loss --\n",
    );
    out.push_str("(share of truly aliased prefixes labeled; single round vs 3-round merge)\n\n");
    let mut t = TextTable::new(&["burst profile", "single round", "merged (paper)", "gain"]);
    let profiles: [(&str, GilbertElliott); 3] = [
        (
            "calm (good 30d @2‰)",
            GilbertElliott {
                mean_good_days: 30,
                mean_bad_days: 1,
                good_drop_permille: 2,
                bad_drop_permille: 2,
            },
        ),
        (
            "bursty (8d @20‰ / 4d @600‰)",
            GilbertElliott {
                mean_good_days: 8,
                mean_bad_days: 4,
                good_drop_permille: 20,
                bad_drop_permille: 600,
            },
        ),
        (
            "storm (4d @50‰ / 6d @850‰)",
            GilbertElliott {
                mean_good_days: 4,
                mean_bad_days: 6,
                good_drop_permille: 50,
                bad_drop_permille: 850,
            },
        ),
    ];
    for (name, burst) in profiles {
        let net =
            Internet::build(Scale::tiny()).with_faults(FaultConfig::lossless().with_burst(burst));
        let day = Day(400);
        let truth: Vec<Prefix> = net
            .population()
            .aliased_groups(day)
            .filter(|g| g.protos.contains(Protocol::Icmp))
            .map(|g| g.prefix)
            .take(250)
            .collect();
        let mut single = AliasDetector::new(DetectorConfig::builder().merge_rounds(0).build());
        single.run_round(&net, &truth, day);
        let single_hits = truth.iter().filter(|p| single.aliased().contains_exact(**p)).count();
        let mut merged = AliasDetector::new(DetectorConfig::default());
        for gap in 0..4u32 {
            merged.run_round(&net, &truth, day.plus(gap));
        }
        let merged_hits = truth.iter().filter(|p| merged.aliased().contains_exact(**p)).count();
        t.row(vec![
            name.to_string(),
            pct(single_hits as f64 / truth.len() as f64),
            pct(merged_hits as f64 / truth.len() as f64),
            format!("+{}", merged_hits.saturating_sub(single_hits)),
        ]);
        json_rows.push(json!({ "ablation": "chaos_merge", "profile": name,
            "mean_good_days": burst.mean_good_days, "mean_bad_days": burst.mean_bad_days,
            "good_drop_permille": burst.good_drop_permille,
            "bad_drop_permille": burst.bad_drop_permille,
            "single": single_hits, "merged": merged_hits, "truth": truth.len() }));
    }
    out.push_str(&t.render());
    out.push_str(
        "(merging spans days, so it only loses when a Bad burst outlives the whole window)\n",
    );
}

/// The combined ablation report.
pub fn ablations(ctx: &Ctx) -> ExpOutput {
    let mut text = String::from("Ablations — what each pipeline mechanism buys (DESIGN.md §7)\n");
    let mut json_rows = Vec::new();
    merge_window(&mut text, &mut json_rows);
    gfw_filter(&mut text, &mut json_rows);
    thirty_day_filter(&mut text, &mut json_rows);
    dc_params(ctx, &mut text, &mut json_rows);
    chaos_merge(&mut text, &mut json_rows);
    ExpOutput { id: "ablations", text, json: json!({ "rows": json_rows }) }
}
