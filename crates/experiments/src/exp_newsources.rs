//! New-source experiments: Table 3, Table 4, Fig. 7, Fig. 8 (Sec. 6).

use std::collections::HashSet;

use serde_json::json;
use sixdust_addr::Addr;
use sixdust_analysis::{human, pct, OverlapMatrix, RankCdf, TextTable};
use sixdust_hitlist::newsources::by_as;
use sixdust_net::{Day, Protocol};

use crate::context::Ctx;
use crate::ExpOutput;

/// Table 3: new input sources — candidates and AS coverage.
pub fn table3(ctx: &mut Ctx) -> ExpOutput {
    let announcing = ctx.net.registry().len();
    let evals = ctx.new_sources().to_vec();
    let mut t = TextTable::new(&["Source", "Addresses", "ASes", "% of announcing"]);
    let mut jrows = Vec::new();
    for e in &evals {
        // AS coverage over the responsive set (candidate lists are not
        // retained in the eval; the paper's Table 3 column is candidates,
        // so treat this as a lower bound).
        let ases = {
            let mut set: HashSet<sixdust_net::AsId> = HashSet::new();
            for a in &e.responsive {
                if let Some(id) = ctx.net.registry().origin(*a) {
                    set.insert(id);
                }
            }
            set.len()
        };
        t.row(vec![
            e.name.clone(),
            human(e.scanned as u64),
            ases.to_string(),
            pct(ases as f64 / announcing as f64),
        ]);
        jrows.push(json!({ "source": e.name, "candidates": e.scanned, "ases": ases }));
    }
    let text = format!(
        "Table 3 — new candidate sources (scale 1/{}; AS coverage over responsive addresses)\n\
         paper shape: 6Graph 125.8 M > 6Tree 37.6 M > DC 5.3 M > 6GAN 3.3 M > 6VecLM 70 k;\n\
         unresponsive pool largest overall\n\n{}",
        ctx.scale.addr_div,
        t.render()
    );
    ExpOutput { id: "table3", text, json: json!({ "rows": jrows }) }
}

/// Table 4: responsive addresses per source per protocol, with top ASes.
pub fn table4(ctx: &mut Ctx) -> ExpOutput {
    let evals = ctx.new_sources().to_vec();
    let hitlist_snap = ctx.snapshot_at(Day::PAPER_END);
    let mut t = TextTable::new(&[
        "Source", "ICMP", "TCP/443", "TCP/80", "UDP/443", "UDP/53", "Total", "HitRate", "Top AS",
        "Share",
    ]);
    let mut jrows = Vec::new();
    let mut union: HashSet<Addr> = HashSet::new();
    for e in &evals {
        union.extend(e.responsive.iter().copied());
        let top = by_as(&ctx.net, &e.responsive);
        let (top_name, top_share) = top
            .first()
            .map(|(_, name, n)| (name.clone(), *n as f64 / e.responsive.len().max(1) as f64))
            .unwrap_or_default();
        t.row(vec![
            e.name.clone(),
            human(e.count(Protocol::Icmp) as u64),
            human(e.count(Protocol::Tcp443) as u64),
            human(e.count(Protocol::Tcp80) as u64),
            human(e.count(Protocol::Udp443) as u64),
            human(e.count(Protocol::Udp53) as u64),
            human(e.responsive.len() as u64),
            pct(e.hit_rate()),
            top_name,
            pct(top_share),
        ]);
        jrows.push(json!({
            "source": e.name, "responsive": e.responsive.len(),
            "hit_rate": e.hit_rate(), "gfw_filtered": e.gfw_filtered,
            "per_proto": Protocol::ALL.iter().map(|p| json!({"proto": p.to_string(), "n": e.count(*p)})).collect::<Vec<_>>(),
            "top_as": by_as(&ctx.net, &e.responsive).into_iter().take(3).map(|(asn, name, n)| json!({"asn": asn, "as": name, "n": n})).collect::<Vec<_>>(),
        }));
    }
    // Aggregate rows: all new sources, the hitlist, and the grand total.
    let hitlist_total: HashSet<Addr> = hitlist_snap.cleaned_total().addrs().collect();
    let new_union = union.len();
    let mut grand: HashSet<Addr> = union.clone();
    grand.extend(hitlist_total.iter().copied());
    let hl_row = |label: &str, set: &HashSet<Addr>| -> Vec<String> {
        let mut cells = vec![label.to_string()];
        for proto in
            [Protocol::Icmp, Protocol::Tcp443, Protocol::Tcp80, Protocol::Udp443, Protocol::Udp53]
        {
            let per: HashSet<Addr> = hitlist_snap.cleaned_for(proto).addrs().collect();
            cells.push(human(per.intersection(set).count() as u64));
        }
        cells.push(human(set.len() as u64));
        cells.push(String::new());
        let top = by_as(&ctx.net, &set.iter().copied().collect::<Vec<_>>());
        let (name, share) = top
            .first()
            .map(|(_, n, c)| (n.clone(), *c as f64 / set.len().max(1) as f64))
            .unwrap_or_default();
        cells.push(name);
        cells.push(pct(share));
        cells
    };
    t.row(hl_row("IPv6-Hitlist", &hitlist_total));
    // New sources union: per-proto over evals.
    let mut cells = vec!["New-Sources".to_string()];
    for proto in
        [Protocol::Icmp, Protocol::Tcp443, Protocol::Tcp80, Protocol::Udp443, Protocol::Udp53]
    {
        let mut set: HashSet<Addr> = HashSet::new();
        for e in &evals {
            set.extend(
                e.per_proto
                    .iter()
                    .find(|(p, _)| *p == proto)
                    .map(|(_, v)| v.clone())
                    .unwrap_or_default(),
            );
        }
        cells.push(human(set.len() as u64));
    }
    cells.push(human(new_union as u64));
    cells.push(String::new());
    let top = by_as(&ctx.net, &union.iter().copied().collect::<Vec<_>>());
    let (name, share) = top
        .first()
        .map(|(_, n, c)| (n.clone(), *c as f64 / union.len().max(1) as f64))
        .unwrap_or_default();
    cells.push(name);
    cells.push(pct(share));
    t.row(cells);

    let new_vs_hitlist = new_union as f64 / hitlist_total.len().max(1) as f64;
    let new_only: usize = union.difference(&hitlist_total).count();
    let text = format!(
        "Table 4 — responsive addresses per new source (GFW-cleaned; scale 1/{})\n\
         paper shape: 6Graph 3.8 M > 6Tree 2.2 M > unresponsive 1.3 M > DC 651 k ≫ passive 21.6 k ≫ 6GAN > 6VecLM;\n\
         DC hit rate ≈12 % > 6Tree ≈6 % > 6Graph ≈3 %; new total ≈1.74x the hitlist; combined 8.8 M\n\n{}\n\
         new-source union: {}   hitlist: {}   ratio {:.2}x (paper: 5.6 M vs 3.2 M = 1.74x)\n\
         previously unknown responsive: {}   combined total: {}\n",
        ctx.scale.addr_div,
        t.render(),
        human(new_union as u64),
        human(hitlist_total.len() as u64),
        new_vs_hitlist,
        human(new_only as u64),
        human(grand.len() as u64),
    );
    ExpOutput {
        id: "table4",
        text,
        json: json!({ "rows": jrows, "new_union": new_union,
            "hitlist": hitlist_total.len(), "combined": grand.len(),
            "ratio": new_vs_hitlist }),
    }
}

/// Fig. 7: overlap between the new sources' responsive sets.
pub fn fig7(ctx: &mut Ctx) -> ExpOutput {
    let evals = ctx.new_sources().to_vec();
    let sets: Vec<(String, Vec<Addr>)> =
        evals.iter().map(|e| (e.name.clone(), e.responsive.clone())).collect();
    let m = OverlapMatrix::new(&sets);
    // The paper's headline: 89.34 % of 6Tree's hits also come from 6Graph.
    let tree = sets.iter().position(|(n, _)| n == "6tree");
    let graph = sets.iter().position(|(n, _)| n == "6graph");
    let tree_in_graph = match (tree, graph) {
        (Some(i), Some(j)) => m.at(i, j),
        _ => 0.0,
    };
    // Unique contribution per source.
    let mut uniques = Vec::new();
    for (i, (name, set)) in sets.iter().enumerate() {
        let others: HashSet<Addr> = sets
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != i)
            .flat_map(|(_, (_, v))| v.iter().copied())
            .collect();
        let unique = set.iter().filter(|a| !others.contains(a)).count();
        uniques.push((name.clone(), unique));
    }
    let text = format!(
        "Fig. 7 — overlap between new sources (% of row responsive set also found by column)\n\
         paper shape: 6Tree ⊂ 6Graph ≈89 %; every source contributes unique addresses\n\n{}\n\
         6Tree within 6Graph: {:.1} % (paper: 89.3 %)\n\
         unique contributions: {:?}\n",
        m.render(),
        tree_in_graph,
        uniques,
    );
    ExpOutput {
        id: "fig7",
        text,
        json: json!({ "labels": m.labels, "pct": m.pct,
            "tree_in_graph": tree_in_graph,
            "uniques": uniques.iter().map(|(n, u)| json!({"source": n, "unique": u})).collect::<Vec<_>>() }),
    }
}

/// Fig. 8: AS distribution of responsive addresses per new source.
pub fn fig8(ctx: &mut Ctx) -> ExpOutput {
    let evals = ctx.new_sources().to_vec();
    let mut t = TextTable::new(&["Source", "responsive", "ASes", "top-AS", "share", "skew"]);
    let mut series = Vec::new();
    for e in &evals {
        let rows = by_as(&ctx.net, &e.responsive);
        let cdf = RankCdf::new(rows.iter().map(|(_, _, n)| *n as u64).collect());
        let top = rows.first().map(|(_, n, _)| n.clone()).unwrap_or_default();
        t.row(vec![
            e.name.clone(),
            human(e.responsive.len() as u64),
            cdf.categories().to_string(),
            top.clone(),
            pct(cdf.top_share()),
            format!("{:.2}", cdf.skew()),
        ]);
        series.push(json!({ "source": e.name, "top_as": top,
            "top_share": cdf.top_share(), "ases": cdf.categories(), "cdf": cdf.series(30) }));
    }
    let text = format!(
        "Fig. 8 — AS distribution of responsive addresses per new source\n\
         paper shape: 6Graph/6Tree biased to Free SAS (≈52 %/41 %); DC & passive most even\n\n{}",
        t.render()
    );
    ExpOutput { id: "fig8", text, json: json!({ "sources": series }) }
}
