//! Extension experiments beyond the paper's tables:
//!
//! * `seedless` — the Sec. 7 future-work direction (AddrMiner-style
//!   discovery in ASes without seeds, aiming at the 38 % of announced
//!   prefixes the hitlist does not cover).
//! * `publish` — render the community artifact set the updated service
//!   ships, like ipv6hitlist.github.io does.

use std::collections::HashSet;

use serde_json::json;
use sixdust_addr::Addr;
use sixdust_analysis::{human, pct, TextTable};
use sixdust_hitlist::publish::publish;
use sixdust_net::{Day, ProbeKind, Protocol};
use sixdust_tga::Seedless;

use crate::context::Ctx;
use crate::ExpOutput;

/// Sec. 7 extension: seedless discovery in uncovered announced prefixes.
pub fn seedless(ctx: &Ctx) -> ExpOutput {
    let day = Day::PAPER_END;
    let seeds: Vec<Addr> = ctx.svc.input().iter().copied().collect();
    let announced: Vec<_> = ctx
        .net
        .registry()
        .announced_prefixes()
        .map(|(p, _)| p)
        .filter(|p| p.len() <= 48) // operator-scale announcements
        .collect();
    let uncovered = Seedless::uncovered(announced.iter().copied(), &seeds);
    let coverage_before = 1.0 - uncovered.len() as f64 / announced.len().max(1) as f64;

    let generator = Seedless::default();
    let conventions = Seedless::mine_conventions(&seeds, 4);
    let raw = generator.generate_for(announced.iter().copied(), &seeds, 200_000);
    // Aliased prefixes answer on any address — they must be filtered here
    // exactly like in every other source evaluation, or seedless "hits"
    // would just be CDN space.
    let aliased = ctx.svc.aliased();
    let candidates: Vec<Addr> = raw.into_iter().filter(|a| !aliased.covers_addr(*a)).collect();

    // Scan the candidates (ICMP, like AddrMiner's seedless validation).
    let mut responsive: Vec<Addr> = Vec::new();
    for c in &candidates {
        if !ctx.net.probe(*c, &ProbeKind::IcmpEcho { size: 8 }, day).is_empty() {
            responsive.push(*c);
        }
    }
    // Newly covered announced prefixes.
    let covered_now: HashSet<_> =
        uncovered.iter().filter(|p| responsive.iter().any(|a| p.contains(*a))).collect();
    let coverage_after =
        1.0 - (uncovered.len() - covered_now.len()) as f64 / announced.len().max(1) as f64;

    let mut t = TextTable::new(&["metric", "value"]);
    t.row(vec!["announced prefixes (≤/48)".into(), announced.len().to_string()]);
    t.row(vec!["covered by hitlist input".into(), pct(coverage_before)]);
    t.row(vec!["uncovered (the seedless target)".into(), uncovered.len().to_string()]);
    t.row(vec!["candidates generated".into(), human(candidates.len() as u64)]);
    t.row(vec!["responsive".into(), human(responsive.len() as u64)]);
    t.row(vec!["hit rate".into(), pct(responsive.len() as f64 / candidates.len().max(1) as f64)]);
    t.row(vec!["newly covered prefixes".into(), covered_now.len().to_string()]);
    t.row(vec!["coverage after".into(), pct(coverage_after)]);
    let text = format!(
        "Sec. 7 extension — seedless discovery (AddrMiner direction)\n\
         paper: hitlist covers 62 % of announced prefixes; AddrMiner proposes reaching the rest\n\n{}\n\
         mined conventions (transfer knowledge): {:?}\n",
        t.render(),
        conventions.iter().map(|c| format!("::{c:x}")).collect::<Vec<_>>(),
    );
    ExpOutput {
        id: "seedless",
        text,
        json: json!({
            "announced": announced.len(),
            "coverage_before": coverage_before,
            "coverage_after": coverage_after,
            "candidates": candidates.len(),
            "responsive": responsive.len(),
            "newly_covered": covered_now.len(),
        }),
    }
}

/// Render and persist the service's community artifacts.
pub fn publish_artifacts(ctx: &Ctx, out_dir: &std::path::Path) -> ExpOutput {
    let publication = publish(&ctx.svc);
    let dir = out_dir.join("artifacts");
    publication.write_to(&dir).expect("write artifacts");
    let mut t = TextTable::new(&["artifact", "entries"]);
    for (name, count) in &publication.manifest.counts {
        t.row(vec![name.clone(), count.to_string()]);
    }
    // Consistency check mirroring what a downstream consumer would do.
    let responsive = sixdust_hitlist::Publication::parse_addresses(&publication.responsive)
        .expect("published addresses parse");
    let per53 = publication
        .per_protocol
        .iter()
        .find(|(s, _)| s == "responsive-udp53.txt")
        .map(|(_, b)| b.lines().count())
        .unwrap_or(0);
    let text = format!(
        "Service artifacts (the files ipv6hitlist.github.io publishes), {}\n\
         written to {}\n\n{}\n\
         downstream check: {} responsive addresses parse; UDP/53 file holds {}\n\
         gfw filter active in this publication: {}\n",
        publication.date,
        dir.display(),
        t.render(),
        responsive.len(),
        per53,
        publication.manifest.gfw_filter_active,
    );
    let date = publication.date.clone();
    ExpOutput {
        id: "publish",
        text,
        json: json!({
            "date": date,
            "counts": publication.manifest.counts,
            "gfw_filter_active": publication.manifest.gfw_filter_active,
        }),
    }
}

/// Sec. 4.1 companion: IID-class breakdown of input vs responsive.
pub fn iidclasses(ctx: &Ctx) -> ExpOutput {
    use sixdust_addr::IidBreakdown;
    let input = IidBreakdown::of(ctx.svc.input().iter().copied());
    let snap = ctx.snapshot_at(Day::PAPER_END);
    let responsive = IidBreakdown::of(snap.cleaned_total().addrs());
    let mut t = TextTable::new(&["class", "input", "input %", "responsive", "responsive %"]);
    for ((label, n_in), (_, n_resp)) in input.rows().into_iter().zip(responsive.rows()) {
        t.row(vec![
            label.to_string(),
            human(n_in),
            pct(n_in as f64 / input.total.max(1) as f64),
            human(n_resp),
            pct(n_resp as f64 / responsive.total.max(1) as f64),
        ]);
    }
    let text = format!(
        "IID classes of input vs responsive addresses (Sec. 4.1 companion)\n\
         paper shape: input dominated by EUI-64 (rotating CPE) and random (routers, LBs);\n\
         the responsive set leans low-byte (servers)\n\n{}",
        t.render()
    );
    let _ = Protocol::Icmp; // keep the import honest if the table shrinks
    ExpOutput {
        id: "iidclasses",
        text,
        json: json!({ "input": input.rows(), "responsive": responsive.rows() }),
    }
}
