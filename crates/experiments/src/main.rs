//! `sixdust-exp` — the experiment harness.
//!
//! One subcommand per table/figure of the paper (see `DESIGN.md` §4 for
//! the index). Results are printed as paper-style text tables and written
//! to `results/<id>.{txt,json}`.
//!
//! ```text
//! sixdust-exp [--scale tiny|small|paper] [--seed N] [--out DIR] \
//!             [--telemetry PATH] [--series PATH] [--trace PATH] \
//!             [--checkpoint PATH] [--serve-report PATH] <experiment>|all
//! ```
//!
//! `--telemetry PATH` dumps the shared metrics registry (scan, alias,
//! service and TGA series — see README "Observability") as JSON after
//! every experiment, so the file is complete even on partial runs.
//! `--series PATH` records per-round metric deltas during the service run
//! and writes them as JSONL (one object per round). `--trace PATH`
//! installs a trace journal and writes Chrome trace-event JSON loadable
//! in `chrome://tracing` / Perfetto. `--checkpoint PATH` saves the
//! service state crash-safely during the four-year run and resumes from
//! it on restart (a corrupt checkpoint is ignored, never fatal).
//! `--serve-report PATH` publishes every service round into a serve-layer
//! snapshot store, replays a deterministic high-QPS day of simulated
//! registered-consumer load against it (100k requests, Zipf artifact
//! popularity, ETag and delta fetches, admission control) and writes the
//! day's totals as JSON. `--dashboard PATH` builds the full ops stack —
//! per-round series, the standard SLO engine with burn-rate alerting, a
//! black-box flight recorder, and the serve-day replay — and writes a
//! self-contained static HTML ops dashboard (byte-identical across runs
//! at a fixed seed). `--vantages N` runs the multi-vantage fleet (EU /
//! US / behind-GFW CN roster) over the GFW filtering era instead of the
//! experiment suite and writes the per-day disagreement artifact to
//! `<out>/vantage_disagreement.json`; with `--checkpoint PATH` the fleet
//! saves (and resumes from) a crash-safe fleet checkpoint. See
//! EXPERIMENTS.md for worked examples.

mod context;
mod exp_ablations;
mod exp_alias;
mod exp_extensions;
mod exp_newsources;
mod exp_service;

use std::io::Write;
use std::path::PathBuf;

use context::Ctx;
use sixdust_net::Scale;

/// One experiment's rendered output.
pub struct ExpOutput {
    /// Experiment id (file stem).
    pub id: &'static str,
    /// Human-readable block.
    pub text: String,
    /// Machine-readable result.
    pub json: serde_json::Value,
}

const EXPERIMENTS: &[&str] = &[
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "fingerprints",
    "domains",
    "dnsvalidate",
    "eui64",
    "stability",
    "ablations",
    "seedless",
    "publish",
    "iidclasses",
    "pipeline",
];

fn usage() -> ! {
    eprintln!(
        "usage: sixdust-exp [--scale tiny|small|paper] [--seed N] [--out DIR] \
         [--telemetry PATH] [--series PATH] [--trace PATH] [--checkpoint PATH] \
         [--serve-report PATH] [--dashboard PATH] [--mirrors N] [--serve-faults] \
         [--clients N] [--flash-crowd] [--vantages N] <experiment>|all\n\
         (--clients N switches the serve day to N session-based virtual clients;\n\
          --flash-crowd adds a publication-chasing arrival spike — implies sessions)\n\
         (--vantages N runs the multi-vantage fleet and exits; no experiment needed)\n\
         experiments: {}",
        EXPERIMENTS.join(", ")
    );
    std::process::exit(2);
}

fn pipeline_text() -> String {
    "Fig. 1 — the IPv6 Hitlist service pipeline as realized by sixdust\n\
     \n\
     sources ──────────────┐\n\
       domain AAAA (zones) │\n\
       CT logs             │         ┌────────────┐   ┌─────────────────┐\n\
       RIPE-Atlas (CPE)    ├──► input│ blocklist  │──►│ aliased prefix  │\n\
       rDNS (one-time)     │   accum.│ filter     │   │ filter (MAPD)   │\n\
       traceroute feedback │         └────────────┘   └─────────────────┘\n\
     ──────────────────────┘                                  │\n\
                  ┌────────────────────┐   ┌──────────────┐   ▼\n\
                  │ GFW filter (NEW,   │◄──│ ZMapv6 scans │◄── 30-day filter\n\
                  │ cleans UDP/53)     │   │ 5 protocols  │\n\
                  └────────────────────┘   └──────┬───────┘\n\
                                                  │\n\
                                        Yarrp traceroutes ──► new input\n\
     \n\
     modules: sixdust-hitlist::{sources,filters,service}, sixdust-scan, sixdust-alias\n"
        .to_string()
}

/// Window a flash crowd keeps arriving after a publication: 30 virtual
/// minutes, the shape of a fresh-hitlist announcement.
const FLASH_WINDOW_US: u64 = 1_800_000_000;

/// The serve-day fleet for the CLI flags: the classic uniform 100k-request
/// replay by default, or — under `--clients` / `--flash-crowd` — a
/// session-based day (heavy-tailed per-client request counts, think time,
/// publication-chasing spikes) that scales to millions of virtual clients.
fn fleet_for(
    seed: u64,
    clients: Option<u64>,
    flash_crowd: bool,
    spikes: &[(u64, u64)],
) -> sixdust_serve::FleetConfig {
    let mut fleet = sixdust_serve::FleetConfig::default().with_seed(seed);
    if clients.is_some() || flash_crowd {
        let mut shape = sixdust_serve::SessionShape::builder();
        if flash_crowd {
            for &(at_us, window_us) in spikes {
                shape = shape.with_spike(at_us, window_us);
            }
        }
        fleet = fleet.with_clients(clients.unwrap_or(100_000)).with_session(shape);
    }
    fleet.build().expect("serve fleet config rejected")
}

fn main() {
    let mut scale = Scale::paper();
    let mut out_dir = PathBuf::from("results");
    let mut telemetry_path: Option<PathBuf> = None;
    let mut series_path: Option<PathBuf> = None;
    let mut trace_path: Option<PathBuf> = None;
    let mut checkpoint_path: Option<PathBuf> = None;
    let mut serve_report_path: Option<PathBuf> = None;
    let mut dashboard_path: Option<PathBuf> = None;
    let mut mirrors: Option<usize> = None;
    let mut vantages: Option<usize> = None;
    let mut serve_faults = false;
    let mut clients: Option<u64> = None;
    let mut flash_crowd = false;
    let mut cmds: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => match args.next().as_deref() {
                Some("tiny") => {
                    let seed = scale.seed;
                    scale = Scale::tiny().with_seed(seed);
                }
                Some("small") => {
                    let seed = scale.seed;
                    scale = Scale::small().with_seed(seed);
                }
                Some("paper") => {
                    let seed = scale.seed;
                    scale = Scale::paper().with_seed(seed);
                }
                other => {
                    eprintln!("unknown scale {other:?}");
                    usage()
                }
            },
            "--seed" => {
                let Some(s) = args.next().and_then(|v| v.parse::<u64>().ok()) else {
                    usage();
                };
                scale = scale.with_seed(s);
            }
            "--out" => {
                let Some(d) = args.next() else { usage() };
                out_dir = PathBuf::from(d);
            }
            "--telemetry" => {
                let Some(p) = args.next() else { usage() };
                telemetry_path = Some(PathBuf::from(p));
            }
            "--series" => {
                let Some(p) = args.next() else { usage() };
                series_path = Some(PathBuf::from(p));
            }
            "--trace" => {
                let Some(p) = args.next() else { usage() };
                trace_path = Some(PathBuf::from(p));
            }
            "--checkpoint" => {
                let Some(p) = args.next() else { usage() };
                checkpoint_path = Some(PathBuf::from(p));
            }
            "--serve-report" => {
                let Some(p) = args.next() else { usage() };
                serve_report_path = Some(PathBuf::from(p));
            }
            "--dashboard" => {
                let Some(p) = args.next() else { usage() };
                dashboard_path = Some(PathBuf::from(p));
            }
            "--mirrors" => {
                let Some(n) = args.next().and_then(|v| v.parse::<usize>().ok()).filter(|&n| n > 0)
                else {
                    usage();
                };
                mirrors = Some(n);
            }
            "--vantages" => {
                let Some(n) = args.next().and_then(|v| v.parse::<usize>().ok()).filter(|&n| n > 0)
                else {
                    usage();
                };
                vantages = Some(n);
            }
            "--clients" => {
                let Some(n) = args.next().and_then(|v| v.parse::<u64>().ok()).filter(|&n| n > 0)
                else {
                    usage();
                };
                clients = Some(n);
            }
            "--flash-crowd" => flash_crowd = true,
            "--serve-faults" => serve_faults = true,
            "--help" | "-h" => usage(),
            other => cmds.push(other.to_string()),
        }
    }
    // `--vantages N` is its own mode: run the fleet, write the
    // disagreement artifact, exit. The experiment suite stays
    // single-vantage (its world *is* vantage 0's world).
    if let Some(n) = vantages {
        std::fs::create_dir_all(&out_dir).expect("create results dir");
        run_vantage_fleet(
            n,
            scale,
            &out_dir,
            telemetry_path.as_deref(),
            checkpoint_path.as_deref(),
        );
        return;
    }
    if cmds.is_empty() {
        usage();
    }
    if cmds.iter().any(|c| c == "all") {
        cmds = EXPERIMENTS.iter().map(|s| s.to_string()).collect();
    }
    for c in &cmds {
        if !EXPERIMENTS.contains(&c.as_str()) {
            eprintln!("unknown experiment {c:?}");
            usage();
        }
    }

    std::fs::create_dir_all(&out_dir).expect("create results dir");
    let mut ctx = Ctx::build_resumable(
        scale,
        context::ObsOptions {
            series: series_path.is_some(),
            trace: trace_path.is_some(),
            serve: serve_report_path.is_some(),
            dashboard: dashboard_path.is_some(),
            mirror: mirrors.is_some(),
        },
        checkpoint_path.as_deref(),
    );

    // The service run is over, so the per-round series is complete now;
    // write it once up front rather than after each experiment.
    if let Some(path) = &series_path {
        let recorder = ctx.svc.series().expect("series recorder attached");
        write_observability(path, &recorder.to_jsonl());
        eprintln!("[obs] wrote {} rounds of series data to {}", recorder.len(), path.display());
    }
    // Chaos replay (`--mirrors N`): rebuild the origin from the captured
    // publish history and drive the same simulated day through an
    // N-mirror tier via the resilient client path — affinity, failover,
    // retries with seeded backoff, hedging, circuit breakers — under the
    // seeded fault plan when `--serve-faults` is given. Replaces the
    // flat single-frontend serve-day replay; metrics land in the chaos
    // observer's own registry so the shared one stays undisturbed.
    if let Some(n) = mirrors {
        let day = sixdust_serve::FleetConfig::default().day_micros;
        let faults = if serve_faults {
            sixdust_serve::ServeFaultConfig::chaos_scaled(scale.seed, n, day)
        } else {
            sixdust_serve::ServeFaultConfig::lossless()
        };
        let (origin, plan) = ctx.chaos_origin_and_plan(day);
        // A flash crowd chases publications: one spike per planned
        // publish (or fixed thirds of the day when the plan is empty).
        let spikes: Vec<(u64, u64)> = if plan.is_empty() {
            vec![(day / 3, FLASH_WINDOW_US), (2 * day / 3, FLASH_WINDOW_US)]
        } else {
            plan.iter().filter(|p| p.at_us < day).map(|p| (p.at_us, FLASH_WINDOW_US)).collect()
        };
        let fleet = fleet_for(scale.seed, clients, flash_crowd, &spikes);
        let mut observer = sixdust_serve::ChaosObserver::new(sixdust_telemetry::Registry::new());
        let mut tier = sixdust_serve::MirrorTier::new(
            sixdust_serve::MirrorTierConfig::builder().with_mirrors(n),
            origin,
            faults,
        )
        .with_telemetry(observer.registry())
        .with_flight(observer.flight().clone());
        let config = sixdust_serve::ChaosDayConfig::builder().with_fleet(fleet);
        let started = std::time::Instant::now();
        let report = sixdust_serve::run_chaos_day(&config, &mut tier, &plan, Some(&mut observer));
        let wall = started.elapsed().as_secs_f64();
        let r = &report.resilience;
        // Wall-clock throughput goes to stderr only: the report file
        // stays byte-identical across runs at a fixed seed.
        eprintln!(
            "[bench] chaos day: {} requests in {:.3} s wall ({:.0} requests/sec)",
            r.logical_requests,
            wall,
            r.logical_requests as f64 / wall.max(1e-9),
        );
        if report.flash_arrivals > 0 {
            eprintln!("[obs] flash crowd: {} arrivals inside spike windows", report.flash_arrivals);
        }
        eprintln!(
            "[obs] chaos day over {} mirrors ({}): {} requests / {} attempts, \
             {} retries, {} failovers, {} hedged ({} wins), {} breaker opens, \
             {} stale served, {} syncs ({} rejected), {} hard failures",
            r.mirrors,
            if serve_faults { "chaos faults" } else { "lossless" },
            r.logical_requests,
            r.attempts,
            r.retries,
            r.failovers,
            r.hedged,
            r.hedge_wins,
            r.breaker_opened,
            r.stale_served,
            r.syncs,
            r.sync_rejected,
            r.hard_failures,
        );
        eprintln!(
            "[obs] chaos day observability: {} SLO breach rounds, {} flight captures",
            observer.slo().breaches().len(),
            observer.flight().captures_len(),
        );
        if let Some(path) = &serve_report_path {
            let json = serde_json::to_string_pretty(&report).expect("report serializes");
            write_observability(path, &json);
            eprintln!("[obs] wrote chaos serve report to {}", path.display());
        }
    }
    // The store now holds every round of the run; replay one high-QPS
    // day of simulated consumer load against it and write the report.
    if mirrors.is_none() && (serve_report_path.is_some() || dashboard_path.is_some()) {
        let store = ctx.serve.clone().expect("serve store attached");
        let day = sixdust_serve::FleetConfig::default().day_micros;
        let spikes = [(day / 3, FLASH_WINDOW_US), (2 * day / 3, FLASH_WINDOW_US)];
        let fleet = fleet_for(scale.seed, clients, flash_crowd, &spikes);
        let started = std::time::Instant::now();
        let report = sixdust_serve::run_day_observed(
            &fleet,
            sixdust_serve::FrontendConfig::default(),
            &store,
            Some(&ctx.telemetry),
            ctx.svc.flight(),
        );
        let wall = started.elapsed().as_secs_f64();
        eprintln!(
            "[obs] serve day: {} requests, {} bodies ({} delta), {} bytes, {} hits/{} misses, \
             {} not-modified, {} shed",
            report.totals.requests,
            report.totals.bodies,
            report.totals.delta_fetches,
            report.totals.bytes_sent,
            report.totals.cache_hits,
            report.totals.cache_misses,
            report.totals.not_modified,
            report.totals.shed_client + report.totals.shed_global,
        );
        if report.flash_arrivals > 0 {
            eprintln!("[obs] flash crowd: {} arrivals inside spike windows", report.flash_arrivals);
        }
        eprintln!(
            "[obs] serve day ledger: {} clients, {} bytes saved by delta, {} delta fallbacks, \
             p50/p90/p99 latency {}/{}/{} us",
            report.clients,
            report.bytes_saved_by_delta,
            report.delta_fallbacks,
            report.latency_p50_us,
            report.latency_p90_us,
            report.latency_p99_us,
        );
        // Wall-clock throughput goes to stderr only: the report file
        // stays byte-identical across runs at a fixed seed.
        eprintln!(
            "[bench] serve day: {} requests in {:.3} s wall ({:.0} requests/sec)",
            report.totals.requests,
            wall,
            report.totals.requests as f64 / wall.max(1e-9),
        );
        if let Some(path) = &serve_report_path {
            let json = serde_json::to_string_pretty(&report).expect("report serializes");
            write_observability(path, &json);
            eprintln!("[obs] wrote serve report to {}", path.display());
        }
    }
    // Fold the serve day's registry deltas into the observability stream
    // as one extra round (keyed past the last service day), then render
    // the self-contained ops dashboard. Rendered before the experiments
    // run so their registry churn cannot perturb the page: at a fixed
    // seed the HTML is byte-identical across runs. A `--mirrors` chaos
    // replay keeps its metrics in an isolated registry, so there is no
    // flat serve day to fold in and the subtitle says so.
    if let Some(path) = &dashboard_path {
        if mirrors.is_none() {
            let serve_key = ctx.svc.rounds().last().map(|r| r.day.0 + 1).unwrap_or(0);
            ctx.svc.record_series_round(serve_key);
        }
        let subtitle = format!(
            "scale addr 1/{} entity 1/{} seed {:#x} — {} service rounds{}",
            scale.addr_div,
            scale.entity_div,
            scale.seed,
            ctx.svc.rounds().len(),
            if mirrors.is_none() { " + 1 serve day" } else { "" },
        );
        let dash = sixdust_telemetry::Dashboard {
            title: "sixdust ops",
            subtitle: &subtitle,
            series: ctx.svc.series().expect("dashboard implies series"),
            slo: ctx.svc.slo(),
            flight: ctx.svc.flight(),
        };
        write_observability(path, &dash.render());
        let breaches = ctx.svc.slo().map(|e| e.breaches().len()).unwrap_or(0);
        let captures = ctx.svc.flight().map(|f| f.captures_len()).unwrap_or(0);
        eprintln!(
            "[obs] wrote ops dashboard to {} ({} SLO breach rounds, {} flight captures)",
            path.display(),
            breaches,
            captures
        );
    }
    for cmd in &cmds {
        let t0 = std::time::Instant::now();
        let out = if cmd == "publish" {
            exp_extensions::publish_artifacts(&ctx, &out_dir)
        } else {
            run_one(&mut ctx, cmd)
        };
        println!(
            "\n================ {} ({:.1}s) ================",
            out.id,
            t0.elapsed().as_secs_f64()
        );
        println!("{}", out.text);
        let txt_path = out_dir.join(format!("{}.txt", out.id));
        std::fs::write(&txt_path, &out.text).expect("write txt");
        let json_path = out_dir.join(format!("{}.json", out.id));
        let mut f = std::fs::File::create(&json_path).expect("create json");
        let enriched = serde_json::json!({
            "experiment": out.id,
            "scale": { "addr_div": scale.addr_div, "entity_div": scale.entity_div, "seed": scale.seed },
            "result": out.json,
        });
        writeln!(f, "{}", serde_json::to_string_pretty(&enriched).expect("serialize"))
            .expect("write json");
        // Dump after every experiment so the telemetry and trace files are
        // complete even if a later experiment aborts the run (experiments
        // keep emitting spans, e.g. the new-source alias pass).
        if let Some(path) = &telemetry_path {
            write_observability(path, &ctx.telemetry.snapshot().to_json());
        }
        if let Some(path) = &trace_path {
            let journal = ctx.trace.as_ref().expect("trace journal installed");
            write_observability(path, &journal.to_chrome_json());
        }
    }
    if let Some(path) = &trace_path {
        let journal = ctx.trace.as_ref().expect("trace journal installed");
        eprintln!(
            "[obs] wrote {} trace events to {} (open in chrome://tracing)",
            journal.len(),
            path.display()
        );
    }
}

/// The `--vantages N` mode: run the default N-vantage roster (EU / US /
/// behind-GFW CN, extras in neutral regions) over the GFW filtering era
/// with the cleaning filter live — the window where standing somewhere
/// else actually changes what a scan sees — and write the per-day
/// disagreement reports as `<out>/vantage_disagreement.json`.
///
/// With `--checkpoint PATH` the fleet saves a crash-safe checkpoint
/// after every synchronized batch and resumes from it on restart; a
/// corrupt or roster-incompatible checkpoint is reported and ignored.
/// With `--telemetry PATH` the fleet's registry (including the
/// `vantage.*` metrics) is dumped as JSON at the end of the run.
fn run_vantage_fleet(
    n: usize,
    scale: Scale,
    out_dir: &std::path::Path,
    telemetry_path: Option<&std::path::Path>,
    checkpoint_path: Option<&std::path::Path>,
) {
    use sixdust_net::{events, FaultConfig};
    use sixdust_vantage::{FleetConfig, FleetState, VantageFleet};

    let registry = sixdust_telemetry::Registry::new();
    let config = FleetConfig::new(scale, n)
        .with_faults(FaultConfig::lossless().with_drop_permille(2))
        .with_threads(4);
    let from = events::GFW_FILTER_DEPLOYED;
    let until = from.plus(20);

    let mut fleet = match checkpoint_path.filter(|p| p.exists()) {
        Some(path) => match FleetState::load(path) {
            Ok(state) if state.specs == config.specs => {
                eprintln!(
                    "[vantage] resuming from checkpoint {} ({} reports so far)",
                    path.display(),
                    state.reports.len()
                );
                VantageFleet::restore_with_telemetry(config, &registry, &state)
            }
            Ok(_) => {
                eprintln!("[vantage] ignoring checkpoint {} (different roster)", path.display());
                VantageFleet::build_with_telemetry(config, &registry)
            }
            Err(e) => {
                eprintln!("[vantage] ignoring unusable checkpoint {}: {e}", path.display());
                VantageFleet::build_with_telemetry(config, &registry)
            }
        },
        None => VantageFleet::build_with_telemetry(config, &registry),
    };

    let t0 = std::time::Instant::now();
    fleet.run_with(from, until, |fleet, day| {
        if let Some(path) = checkpoint_path {
            FleetState::capture(fleet).save_atomic(path).expect("fleet checkpoint save");
        }
        if let Some(report) = fleet.reports().last().filter(|r| r.day == day) {
            eprintln!(
                "[vantage] day {}: union {} / intersection {} — {} disagreements ({} gfw)",
                day.0,
                report.union,
                report.intersection,
                report.disagreements,
                report.gfw_disagreements
            );
        }
    });

    let artifact = out_dir.join("vantage_disagreement.json");
    let json = serde_json::to_string_pretty(fleet.reports()).expect("reports serialize");
    write_observability(&artifact, &json);
    let total: u64 = fleet.reports().iter().map(|r| r.disagreements).sum();
    let gfw: u64 = fleet.reports().iter().map(|r| r.gfw_disagreements).sum();
    let stats = fleet.stats();
    eprintln!(
        "[obs] vantage fleet: {} vantages over days {}..{} in {:.1}s — {} reports, \
         {} disagreements ({} gfw-class), {} segments executed ({} stolen); wrote {}",
        fleet.len(),
        from.0,
        until.0,
        t0.elapsed().as_secs_f64(),
        fleet.reports().len(),
        total,
        gfw,
        stats.executed,
        stats.stolen,
        artifact.display()
    );
    if let Some(path) = telemetry_path {
        write_observability(path, &registry.snapshot().to_json());
        eprintln!("[obs] wrote fleet telemetry to {}", path.display());
    }
}

/// Writes one observability artifact, creating parent directories.
fn write_observability(path: &std::path::Path, contents: &str) {
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir).expect("create output dir");
    }
    std::fs::write(path, contents).expect("write observability output");
}

fn run_one(ctx: &mut Ctx, cmd: &str) -> ExpOutput {
    match cmd {
        "fig2" => exp_service::fig2(ctx),
        "fig3" => exp_service::fig3(ctx),
        "fig4" => exp_service::fig4(ctx),
        "fig5" => exp_alias::fig5(ctx),
        "fig6" => exp_alias::fig6(ctx),
        "fig7" => exp_newsources::fig7(ctx),
        "fig8" => exp_newsources::fig8(ctx),
        "fig9" => exp_service::fig9(ctx),
        "fig10" => exp_service::fig10(ctx),
        "table1" => exp_service::table1(ctx),
        "table2" => exp_alias::table2(ctx),
        "table3" => exp_newsources::table3(ctx),
        "table4" => exp_newsources::table4(ctx),
        "table5" => exp_service::table5(ctx),
        "fingerprints" => exp_alias::fingerprints(ctx),
        "domains" => exp_alias::domains(ctx),
        "dnsvalidate" => exp_alias::dnsvalidate(ctx),
        "eui64" => exp_service::eui64(ctx),
        "stability" => exp_service::stability(ctx),
        "ablations" => exp_ablations::ablations(ctx),
        "seedless" => exp_extensions::seedless(ctx),
        "iidclasses" => exp_extensions::iidclasses(ctx),
        "publish" => unreachable!("handled in main"),
        "pipeline" => ExpOutput {
            id: "pipeline",
            text: pipeline_text(),
            json: serde_json::json!({ "see": "DESIGN.md" }),
        },
        other => unreachable!("validated: {other}"),
    }
}
