//! Aliased-prefix experiments: Fig. 5, Fig. 6, Table 2, the Sec. 5.1
//! fingerprint/TBT measurements and the Sec. 5.2 domain analysis.

use std::collections::HashMap;

use serde_json::json;
use sixdust_addr::Prefix;
use sixdust_alias::{fingerprint_all, minimal_cover, tbt_all};
use sixdust_analysis::{human, pct, PlenHistogram, TextTable};
use sixdust_net::{Day, ProbeKind, Protocol, Response};

use crate::context::Ctx;
use crate::ExpOutput;

fn trafficforce_as(ctx: &Ctx) -> Option<sixdust_net::AsId> {
    ctx.net.registry().by_asn(212144)
}

fn aliased_with_as(ctx: &Ctx, prefixes: &[Prefix]) -> Vec<(Prefix, sixdust_net::AsId)> {
    prefixes
        .iter()
        .filter_map(|p| ctx.net.registry().origin(p.network()).map(|id| (*p, id)))
        .collect()
}

/// Fig. 5: distribution of aliased prefix lengths per yearly snapshot
/// (2022 excluding Trafficforce, like the paper).
pub fn fig5(ctx: &Ctx) -> ExpOutput {
    let tf = trafficforce_as(ctx);
    let mut text = String::from(
        "Fig. 5 — aliased prefix sizes over time (2022 excludes Trafficforce)\n\
         paper shape: >90 % /64 every year; counts grow 12 k -> 42.8 k; short /28 tail (EpicUp)\n\n",
    );
    let mut years = Vec::new();
    for snap_day in Day::SNAPSHOTS {
        let snap = ctx.snapshot_at(snap_day);
        let with_as = aliased_with_as(ctx, &snap.aliased);
        let filtered: Vec<u8> =
            with_as.iter().filter(|(_, id)| Some(*id) != tf).map(|(p, _)| p.len()).collect();
        let h = PlenHistogram::from_lens(filtered);
        text.push_str(&format!(
            "{}: {:>6} prefixes, /64 share {}  bins {:?}\n",
            snap.day.to_date(),
            h.total(),
            pct(h.share(64)),
            h.bins()
        ));
        years.push(json!({ "date": snap.day.to_date(), "total": h.total(),
            "share64": h.share(64), "bins": h.bins() }));
    }
    // The Trafficforce jump.
    let last = ctx.snapshot_at(Day::PAPER_END);
    let tf_count =
        aliased_with_as(ctx, &last.aliased).iter().filter(|(_, id)| Some(*id) == tf).count();
    text.push_str(&format!(
        "Trafficforce /64 flood in the final snapshot: {tf_count} prefixes (paper: 66.4 k, ICMP-only)\n"
    ));
    ExpOutput { id: "fig5", text, json: json!({ "years": years, "trafficforce": tf_count }) }
}

/// Fig. 6: per-AS aliased address space vs announced space.
pub fn fig6(ctx: &Ctx) -> ExpOutput {
    let last = ctx.snapshot_at(Day::PAPER_END);
    let cover = minimal_cover(&last.aliased);
    let mut per_as: HashMap<sixdust_net::AsId, f64> = HashMap::new();
    for (p, id) in aliased_with_as(ctx, &cover) {
        *per_as.entry(id).or_insert(0.0) += 2f64.powi(i32::from(p.size_log2()));
    }
    let mut rows: Vec<(String, u32, f64, f64)> = per_as
        .into_iter()
        .map(|(id, aliased_space)| {
            let info = ctx.net.registry().get(id);
            let announced = 2f64.powf(info.announced_space_log2());
            (info.name.clone(), info.asn, aliased_space.log2(), aliased_space / announced)
        })
        .collect();
    rows.sort_by(|a, b| b.3.partial_cmp(&a.3).expect("finite"));
    let over50 = rows.iter().filter(|r| r.3 > 0.5).count();
    let over90 = rows.iter().filter(|r| r.3 > 0.9).count();
    let mut t = TextTable::new(&["AS", "ASN", "aliased space (2^x)", "share of announced"]);
    for (name, asn, log2, share) in rows.iter().take(12) {
        t.row(vec![name.clone(), asn.to_string(), format!("{log2:.1}"), pct(*share)]);
    }
    let text = format!(
        "Fig. 6 — aliased space per AS vs announced space ({} ASes with aliased prefixes)\n\
         paper shape: {} ASes >50 % aliased (paper: 80), {} ASes >90 % (paper: 61);\n\
         Fastly ≈95 %, Cloudflare-London & Akamai-ALIAS = 100 %, EpicUp's /28s largest absolute\n\n{}",
        rows.len(),
        over50,
        over90,
        t.render()
    );
    let jrows: Vec<_> = rows
        .iter()
        .map(|(name, asn, log2, share)| json!({ "as": name, "asn": asn, "log2": log2, "share": share }))
        .collect();
    ExpOutput {
        id: "fig6",
        text,
        json: json!({ "ases": jrows, "over50": over50, "over90": over90 }),
    }
}

/// Table 2: responsiveness of one random address per aliased prefix
/// (Trafficforce excluded), per protocol.
pub fn table2(ctx: &Ctx) -> ExpOutput {
    let day = Day::PAPER_END;
    let tf = trafficforce_as(ctx);
    let prefixes: Vec<(Prefix, sixdust_net::AsId)> =
        aliased_with_as(ctx, &ctx.snapshot_at(day).aliased)
            .into_iter()
            .filter(|(_, id)| Some(*id) != tf)
            .collect();
    let mut t = TextTable::new(&["Protocol", "# Prefixes", "# ASes"]);
    let mut jrows = Vec::new();
    for proto in
        [Protocol::Icmp, Protocol::Tcp443, Protocol::Tcp80, Protocol::Udp443, Protocol::Udp53]
    {
        let probe = sixdust_scan::engine::probe_for(proto, "www.google.com");
        let mut hit_prefixes = 0usize;
        let mut ases: std::collections::HashSet<sixdust_net::AsId> = Default::default();
        for (p, id) in &prefixes {
            let target = p.random_addr(0x7AB2);
            let ok = ctx.net.probe(target, &probe, day).iter().any(|r| {
                matches!(
                    r,
                    Response::EchoReply { .. }
                        | Response::SynAck { .. }
                        | Response::QuicVn
                        | Response::Dns(_)
                )
            });
            if ok {
                hit_prefixes += 1;
                ases.insert(*id);
            }
        }
        t.row(vec![proto.to_string(), hit_prefixes.to_string(), ases.len().to_string()]);
        jrows.push(
            json!({ "protocol": proto.to_string(), "prefixes": hit_prefixes, "ases": ases.len() }),
        );
    }
    let text = format!(
        "Table 2 — responsiveness of aliased prefixes (one random address each; {} prefixes, Trafficforce excluded)\n\
         paper shape: ICMP ≈ TCP/80 ≈ TCP/443 ≳ UDP/443 ≫ UDP/53 (172 prefixes only)\n\n{}",
        prefixes.len(),
        t.render()
    );
    ExpOutput { id: "table2", text, json: json!({ "prefixes": prefixes.len(), "rows": jrows }) }
}

/// Sec. 5.1: TCP fingerprints + the Too Big Trick over the labeled set.
pub fn fingerprints(ctx: &Ctx) -> ExpOutput {
    let day = Day::PAPER_END;
    let prefixes: Vec<Prefix> = ctx.snapshot_at(day).aliased.clone();
    // TCP fingerprinting (needs TCP/80 responders).
    let (_, fp) = fingerprint_all(&ctx.net, &prefixes, day, 0x519);
    // TBT over everything (Trafficforce excluded like Table 2's scan).
    let tf = trafficforce_as(ctx);
    let tbt_prefixes: Vec<Prefix> = aliased_with_as(ctx, &prefixes)
        .into_iter()
        .filter(|(_, id)| Some(*id) != tf)
        .map(|(p, _)| p)
        .collect();
    ctx.net.reset_state();
    let (_, tbt) = tbt_all(&ctx.net, &tbt_prefixes, day, 0x7B7);
    let uniform_share = fp.uniform as f64 / fp.fingerprintable.max(1) as f64;
    let shared_share = tbt.shared_all as f64 / tbt.successful.max(1) as f64;
    let text = format!(
        "Sec. 5.1 — fingerprinting the aliased prefixes ({} labels)\n\n\
         TCP fingerprints: {} fingerprintable; {} uniform ({}) — paper: 33.5 k, 99.5 %\n\
           window-only differences: {} (paper: 154 of 160); other features: {}\n\n\
         Too Big Trick: {} successful, {} unsuitable — paper: 29.4 k of 111 k\n\
           shared-all (single host):   {} ({}) — paper: 93.75 %\n\
           shared-none (per-address):  {} — paper: 0.85 %\n\
           partial (load-balanced):    {} — paper: 5.4 %, mostly Akamai/Cloudflare\n",
        prefixes.len(),
        fp.fingerprintable,
        fp.uniform,
        pct(uniform_share),
        fp.window_only_diff,
        fp.other_diff,
        tbt.successful,
        tbt.unsuitable,
        tbt.shared_all,
        pct(shared_share),
        tbt.shared_none,
        tbt.shared_partial,
    );
    ExpOutput {
        id: "fingerprints",
        text,
        json: json!({
            "fingerprintable": fp.fingerprintable, "uniform": fp.uniform,
            "window_only": fp.window_only_diff, "other_diff": fp.other_diff,
            "tbt_successful": tbt.successful, "tbt_shared_all": tbt.shared_all,
            "tbt_shared_none": tbt.shared_none, "tbt_partial": tbt.shared_partial,
        }),
    }
}

/// Sec. 5.2: domains hosted inside aliased prefixes, incl. top lists.
pub fn domains(ctx: &Ctx) -> ExpOutput {
    let day = Day::PAPER_END;
    let zones = ctx.net.zones();
    let pop = ctx.net.population();
    let aliased = ctx.svc.aliased();
    let mut total_in_aliased = 0u64;
    let mut per_prefix: HashMap<Prefix, u64> = HashMap::new();
    let mut per_as: HashMap<sixdust_net::AsId, u64> = HashMap::new();
    for d in 0..zones.total_domains() {
        let (addr, host) = zones.resolve(pop, d, day);
        if aliased.covers_addr(addr) {
            total_in_aliased += 1;
            if let Some(gid) = host.aliased {
                *per_prefix.entry(pop.group(gid).prefix).or_insert(0) += 1;
            }
            *per_as.entry(host.asid).or_insert(0) += 1;
        }
    }
    let max_prefix = per_prefix.iter().max_by_key(|(_, n)| **n);
    let mut as_rows: Vec<(String, u64)> =
        per_as.iter().map(|(id, n)| (ctx.net.registry().get(*id).name.clone(), *n)).collect();
    as_rows.sort_by(|a, b| b.1.cmp(&a.1));

    // Top lists.
    let mut toplist_counts = Vec::new();
    for (list, name) in [(0u8, "Alexa-like"), (1, "Majestic-like"), (2, "Umbrella-like")] {
        let mut n = 0u64;
        let mut top1k = 0u64;
        for rank in 0..zones.toplist_len() {
            let d = zones.toplist_domain(list, rank);
            let (addr, _) = zones.resolve(pop, d, day);
            if aliased.covers_addr(addr) {
                n += 1;
                if rank < zones.toplist_len() / 1000 {
                    top1k += 1;
                }
            }
        }
        toplist_counts.push((name, n, top1k));
    }

    let mut text = format!(
        "Sec. 5.2 — domains hosted in aliased prefixes (day {})\n\
         total domains resolved: {}   in aliased prefixes: {} ({})\n\
         distinct aliased prefixes hosting domains: {}   ASes: {}\n\
         busiest prefix: {} with {} domains (paper: a Cloudflare /48 with 3.94 M)\n\n",
        day.to_date(),
        human(zones.total_domains()),
        human(total_in_aliased),
        pct(total_in_aliased as f64 / zones.total_domains().max(1) as f64),
        per_prefix.len(),
        per_as.len(),
        max_prefix.map(|(p, _)| p.to_string()).unwrap_or_default(),
        human(max_prefix.map(|(_, n)| *n).unwrap_or(0)),
    );
    text.push_str("top ASes hosting aliased domains:\n");
    for (name, n) in as_rows.iter().take(6) {
        text.push_str(&format!("  {name:<24} {}\n", human(*n)));
    }
    text.push_str(
        "\ntop-list domains inside aliased prefixes (paper: 177 k / 170 k / 118 k of 1 M):\n",
    );
    for (name, n, top1k) in &toplist_counts {
        text.push_str(&format!(
            "  {name:<14} {:>8} of {} ({}) — top-1k cohort: {}\n",
            n,
            zones.toplist_len(),
            pct(*n as f64 / zones.toplist_len().max(1) as f64),
            top1k
        ));
    }
    ExpOutput {
        id: "domains",
        text,
        json: json!({
            "total_domains": zones.total_domains(),
            "in_aliased": total_in_aliased,
            "hosting_prefixes": per_prefix.len(),
            "hosting_ases": per_as.len(),
            "max_prefix_domains": max_prefix.map(|(_, n)| *n).unwrap_or(0),
            "toplists": toplist_counts.iter().map(|(n, c, t)| json!({ "list": n, "count": c, "top1k": t })).collect::<Vec<_>>(),
        }),
    }
}

/// Sec. 4.2: validation of remaining UDP/53 responders with a controlled
/// domain.
pub fn dnsvalidate(ctx: &Ctx) -> ExpOutput {
    use sixdust_wire::dns::Rcode;
    let day = Day::PAPER_END;
    let snap = ctx.snapshot_at(day);
    let dns_responders = snap.cleaned_for(Protocol::Udp53);
    ctx.net.reset_state();
    let mut refused = 0u64;
    let mut correct_matching = 0u64;
    let mut referral = 0u64;
    let mut proxied = 0u64;
    let mut broken = 0u64;
    let mut silent = 0u64;
    for (i, target) in dns_responders.addrs().enumerate() {
        // A unique-hash subdomain per probe, mapping probes to NS queries.
        let qname = format!("h{i:08x}.{}", sixdust_net::zones::CONTROLLED_DOMAIN);
        let responses = ctx.net.probe(target, &ProbeKind::Dns { qname: qname.clone() }, day);
        let log = ctx.net.take_ns_log();
        let Some(Response::Dns(msg)) = responses.first() else {
            silent += 1;
            continue;
        };
        match msg.rcode {
            Rcode::Refused => refused += 1,
            Rcode::NoError if !msg.answers.is_empty() => {
                // Did the recursive query reach our name server from the
                // probed address?
                if log.iter().any(|(src, q)| *src == target && *q == qname) {
                    correct_matching += 1;
                } else {
                    proxied += 1;
                }
            }
            Rcode::NoError if !msg.authority.is_empty() => {
                if msg.authority.iter().any(|r| {
                    matches!(&r.rdata,
                    sixdust_wire::dns::Rdata::Ns(n) if n == "localhost")
                }) {
                    broken += 1;
                } else {
                    referral += 1;
                }
            }
            _ => broken += 1,
        }
    }
    let total = dns_responders.len() as u64;
    let text = format!(
        "Sec. 4.2 — controlled-domain validation of {} cleaned UDP/53 responders\n\
         paper shape: 93.8 % valid-but-erroring, 4.6 % recursive+matching, 593 referrals, 15 proxied, 1.1 % broken\n\n\
         REFUSED / error codes:      {} ({})\n\
         recursive, source matches:  {} ({})\n\
         referral to root/parent:    {}\n\
         correct but proxied source: {}\n\
         broken (localhost, odd rc): {}\n\
         silent (loss):              {}\n",
        total,
        refused,
        sixdust_analysis::pct(refused as f64 / total.max(1) as f64),
        correct_matching,
        sixdust_analysis::pct(correct_matching as f64 / total.max(1) as f64),
        referral,
        proxied,
        broken,
        silent,
    );
    ExpOutput {
        id: "dnsvalidate",
        text,
        json: json!({ "total": total, "refused": refused, "recursive": correct_matching,
            "referral": referral, "proxied": proxied, "broken": broken, "silent": silent }),
    }
}
