//! Experiments drawn from the service's longitudinal run:
//! Fig. 2, Fig. 3, Fig. 4, Table 1, Table 5, Fig. 9, Fig. 10.

use std::collections::{HashMap, HashSet};

use serde_json::json;
use sixdust_addr::Addr;
use sixdust_analysis::{human, pct, sparkline, OverlapMatrix, RankCdf, Series, TextTable};
use sixdust_net::{events, AsId, Day, Protocol};

use crate::context::Ctx;
use crate::ExpOutput;

fn as_counts(ctx: &Ctx, addrs: impl Iterator<Item = Addr>) -> HashMap<AsId, u64> {
    let mut m: HashMap<AsId, u64> = HashMap::new();
    for a in addrs {
        if let Some(id) = ctx.net.registry().origin(a) {
            *m.entry(id).or_insert(0) += 1;
        }
    }
    m
}

fn cdf_of(ctx: &Ctx, addrs: impl Iterator<Item = Addr>) -> RankCdf {
    RankCdf::new(as_counts(ctx, addrs).into_values().collect())
}

/// Fig. 2: CDFs of input / input-without-aliased / GFW-impacted /
/// responsive addresses across ASes.
pub fn fig2(ctx: &Ctx) -> ExpOutput {
    let input = ctx.svc.input();
    let aliased = ctx.svc.aliased();
    let gfw = ctx.svc.gfw_impacted();
    let responsive = ctx.snapshot_at(Day::PAPER_END).cleaned_total();

    let full = cdf_of(ctx, input.iter().copied());
    let unaliased = cdf_of(ctx, input.iter().filter(|a| !aliased.covers_addr(**a)).copied());
    let gfw_cdf = cdf_of(ctx, gfw.iter().copied());
    let resp_cdf = cdf_of(ctx, responsive.addrs());

    // Who is the input's top AS, before aliased filtering?
    let counts = as_counts(ctx, input.iter().copied());
    let top_input = counts
        .iter()
        .max_by_key(|(_, n)| **n)
        .map(|(id, n)| (ctx.net.registry().get(*id).name.clone(), *n))
        .unwrap_or_default();

    let mut t = TextTable::new(&[
        "set",
        "addresses",
        "ASes",
        "top-AS share",
        "top-10 share",
        "ASes for 80%",
    ]);
    for (name, cdf) in [
        ("input (full)", &full),
        ("input w/o aliased", &unaliased),
        ("GFW impacted", &gfw_cdf),
        ("responsive", &resp_cdf),
    ] {
        t.row(vec![
            name.to_string(),
            human(cdf.total),
            cdf.categories().to_string(),
            pct(cdf.top_share()),
            pct(cdf.share_of_top(10)),
            cdf.categories_for_share(0.8).to_string(),
        ]);
    }
    let text = format!(
        "Fig. 2 — AS distribution of hitlist address sets (scale 1/{})\n\
         paper shape: full input skewed (Amazon ≈32 % pre-filter), responsive well spread (top <10 %),\n\
         GFW set concentrated (93 % in 10 ASes)\n\n{}\ntop input AS: {} with {}\n",
        ctx.scale.addr_div,
        t.render(),
        top_input.0,
        human(top_input.1),
    );
    let series: Vec<_> = [
        ("input", &full),
        ("input_no_aliased", &unaliased),
        ("gfw", &gfw_cdf),
        ("responsive", &resp_cdf),
    ]
    .iter()
    .map(|(k, c)| {
        json!({ "set": k, "total": c.total, "ases": c.categories(),
        "top_share": c.top_share(), "top10_share": c.share_of_top(10),
        "cdf": c.series(40) })
    })
    .collect();
    ExpOutput { id: "fig2", text, json: json!({ "sets": series }) }
}

/// Fig. 3: responsiveness over time, published vs cleaned, per protocol.
pub fn fig3(ctx: &Ctx) -> ExpOutput {
    let rounds = ctx.svc.rounds();
    let idx53 = Protocol::ALL.iter().position(|p| *p == Protocol::Udp53).expect("udp53");
    let pub53: Vec<u64> = rounds.iter().map(|r| r.published[idx53]).collect();
    let clean53: Vec<u64> = rounds.iter().map(|r| r.cleaned[idx53]).collect();
    let total_pub: Vec<u64> = rounds.iter().map(|r| r.total_published).collect();
    let total_clean: Vec<u64> = rounds.iter().map(|r| r.total_cleaned).collect();

    let spike = *pub53.iter().max().unwrap_or(&0);
    let clean_max = *clean53.iter().max().unwrap_or(&0);
    let icmp_last = rounds.last().map(|r| r.cleaned[0]).unwrap_or(0);
    let icmp_first = rounds.first().map(|r| r.cleaned[0]).unwrap_or(0);

    // Detect injection events from the published series alone (no ground
    // truth) and compare against the true era windows.
    let series = Series::new(rounds.iter().map(|r| (r.day.0, r.published[idx53])).collect());
    let detected = series.spike_windows(8.0, 30);
    let true_eras = [events::GFW_ERA1, events::GFW_ERA2, events::GFW_ERA3].map(|(a, b)| (a.0, b.0));

    let text = format!(
        "Fig. 3 — responsiveness over time (published left / cleaned right in the paper)\n\
         published UDP/53   {}\n\
         cleaned   UDP/53   {}\n\
         published total    {}\n\
         cleaned   total    {}\n\
         UDP/53 spike (published): {}   vs cleaned max: {}  (spike factor {:.0}x)\n\
         cleaned ICMP: {} -> {} ({:.2}x growth)\n",
        sparkline(&pub53),
        sparkline(&clean53),
        sparkline(&total_pub),
        sparkline(&total_clean),
        human(spike),
        human(clean_max),
        spike as f64 / clean_max.max(1) as f64,
        human(icmp_first),
        human(icmp_last),
        icmp_last as f64 / icmp_first.max(1) as f64,
    );
    let text = format!(
        "{text}\
         spike windows detected from the published series: {detected:?}\n\
         true injection eras:                              {true_eras:?}\n"
    );
    let jseries: Vec<_> = rounds
        .iter()
        .map(|r| {
            json!({
                "day": r.day.0, "date": r.day.to_date(),
                "published": r.published, "cleaned": r.cleaned,
                "total_published": r.total_published, "total_cleaned": r.total_cleaned,
            })
        })
        .collect();
    ExpOutput {
        id: "fig3",
        text,
        json: json!({ "rounds": jseries, "detected_eras": detected, "true_eras": true_eras }),
    }
}

/// Fig. 4: churn — newly responsive (brand new vs recurring) and newly
/// unresponsive per scan.
pub fn fig4(ctx: &Ctx) -> ExpOutput {
    let rounds = ctx.svc.rounds();
    let new_brand: Vec<u64> = rounds.iter().map(|r| r.churn_brand_new).collect();
    let recurring: Vec<u64> = rounds.iter().map(|r| r.churn_recurring).collect();
    let gone: Vec<u64> = rounds.iter().map(|r| r.churn_gone).collect();
    // Churn growth with scan-gap growth (the paper's late-period effect).
    let early: f64 = rounds
        .iter()
        .filter(|r| r.day < Day(300))
        .map(|r| (r.churn_gone + r.churn_brand_new + r.churn_recurring) as f64)
        .sum::<f64>()
        / rounds.iter().filter(|r| r.day < Day(300)).count().max(1) as f64;
    let late: f64 = rounds
        .iter()
        .filter(|r| r.day > Day(1100))
        .map(|r| (r.churn_gone + r.churn_brand_new + r.churn_recurring) as f64)
        .sum::<f64>()
        / rounds.iter().filter(|r| r.day > Day(1100)).count().max(1) as f64;
    let text = format!(
        "Fig. 4 — per-scan churn of the responsive set (cleaned view)\n\
         brand new   {}\n\
         recurring   {}\n\
         gone        {}\n\
         mean churn early (daily scans): {:.0}   late (5-day scans): {:.0}  (ratio {:.1}x)\n\
         paper shape: recurring+gone dominate brand-new; churn grows with scan gap\n",
        sparkline(&new_brand),
        sparkline(&recurring),
        sparkline(&gone),
        early,
        late,
        late / early.max(1.0),
    );
    let series: Vec<_> = rounds
        .iter()
        .map(|r| {
            json!({ "day": r.day.0, "brand_new": r.churn_brand_new,
                "recurring": r.churn_recurring, "gone": r.churn_gone })
        })
        .collect();
    ExpOutput { id: "fig4", text, json: json!({ "rounds": series }) }
}

/// Table 1: responsive addresses and ASes per protocol at the yearly
/// snapshots, plus the cumulative row.
pub fn table1(ctx: &Ctx) -> ExpOutput {
    let mut t = TextTable::new(&[
        "Date", "ICMP", "ASes", "TCP/443", "ASes", "TCP/80", "ASes", "UDP/443", "ASes", "UDP/53",
        "ASes", "Total", "ASes",
    ]);
    let mut json_rows = Vec::new();
    for snap_day in Day::SNAPSHOTS {
        let snap = ctx.snapshot_at(snap_day);
        let mut cells = vec![snap.day.to_date()];
        let mut jrow = serde_json::Map::new();
        jrow.insert("date".into(), json!(snap.day.to_date()));
        for proto in Protocol::ALL {
            let addrs = snap.cleaned_for(proto);
            let ases = as_counts(ctx, addrs.addrs()).len();
            cells.push(human(addrs.len() as u64));
            cells.push(ases.to_string());
            jrow.insert(format!("{proto}"), json!({ "addrs": addrs.len(), "ases": ases }));
        }
        let total = snap.cleaned_total();
        let total_ases = as_counts(ctx, total.addrs()).len();
        cells.push(human(total.len() as u64));
        cells.push(total_ases.to_string());
        jrow.insert("total".into(), json!({ "addrs": total.len(), "ases": total_ases }));
        t.row(cells);
        json_rows.push(serde_json::Value::Object(jrow));
    }
    // Cumulative row.
    let cumulative = ctx.svc.cumulative();
    let mut cells = vec!["Cumulative".to_string()];
    let mut jrow = serde_json::Map::new();
    for proto in Protocol::ALL {
        let n = cumulative.values().filter(|p| p.contains(proto)).count();
        cells.push(human(n as u64));
        cells.push(String::new());
        jrow.insert(format!("{proto}"), json!(n));
    }
    cells.push(human(cumulative.len() as u64));
    cells.push(String::new());
    jrow.insert("total".into(), json!(cumulative.len()));
    t.row(cells);
    json_rows.push(serde_json::Value::Object(jrow));

    let first_total = ctx.snapshot_at(Day::SNAPSHOTS[0]).cleaned_total().len();
    let last_total = ctx.snapshot_at(Day::PAPER_END).cleaned_total().len();
    let text = format!(
        "Table 1 — development of responsive addresses and covered ASes (cleaned, scale 1/{})\n\
         paper shape: total grows ≈1.8x over four years; ICMP dominates; cumulative ≫ current\n\n{}\n\
         growth {} -> {} = {:.2}x\n",
        ctx.scale.addr_div,
        t.render(),
        human(first_total as u64),
        human(last_total as u64),
        last_total as f64 / first_total.max(1) as f64,
    );
    ExpOutput { id: "table1", text, json: json!({ "rows": json_rows }) }
}

/// Table 5: top 10 ASes of GFW-impacted addresses.
pub fn table5(ctx: &Ctx) -> ExpOutput {
    let counts = as_counts(ctx, ctx.svc.gfw_impacted().iter().copied());
    let total: u64 = counts.values().sum();
    let mut rows: Vec<(u32, String, u64)> = counts
        .into_iter()
        .map(|(id, n)| {
            let info = ctx.net.registry().get(id);
            (info.asn, info.name.clone(), n)
        })
        .collect();
    rows.sort_by(|a, b| b.2.cmp(&a.2));
    let mut t = TextTable::new(&["ASN", "Name", "# Addresses", "%", "CDF"]);
    let mut cdf = 0.0;
    let mut json_rows = Vec::new();
    for (asn, name, n) in rows.iter().take(10) {
        let share = *n as f64 / total.max(1) as f64;
        cdf += share;
        t.row(vec![
            asn.to_string(),
            name.clone(),
            human(*n),
            format!("{:.2}", share * 100.0),
            format!("{:.2}", cdf * 100.0),
        ]);
        json_rows.push(json!({ "asn": asn, "name": name, "addrs": n, "pct": share * 100.0 }));
    }
    let text = format!(
        "Table 5 — top 10 ASes impacted by the GFW (total impacted: {})\n\
         paper shape: AS4134 ≈46 %, top-2 ≈61 %, top-10 ≈94 %\n\n{}",
        human(total),
        t.render()
    );
    ExpOutput { id: "table5", text, json: json!({ "total": total, "top10": json_rows }) }
}

/// Fig. 9: AS distribution of responsive addresses per protocol.
pub fn fig9(ctx: &Ctx) -> ExpOutput {
    let snap = ctx.snapshot_at(Day::PAPER_END);
    let mut t = TextTable::new(&["protocol", "addresses", "ASes", "top-AS share", "skew"]);
    let mut series = Vec::new();
    for proto in Protocol::ALL {
        let addrs = snap.cleaned_for(proto);
        let cdf = cdf_of(ctx, addrs.addrs());
        t.row(vec![
            proto.to_string(),
            human(cdf.total),
            cdf.categories().to_string(),
            pct(cdf.top_share()),
            format!("{:.2}", cdf.skew()),
        ]);
        series.push(json!({ "protocol": proto.to_string(), "ases": cdf.categories(),
            "top_share": cdf.top_share(), "cdf": cdf.series(30) }));
    }
    let text = format!(
        "Fig. 9 — per-protocol AS distribution of responsive addresses ({})\n\
         paper shape: UDP/53 most even; UDP/443 fewest ASes\n\n{}",
        snap.day.to_date(),
        t.render()
    );
    ExpOutput { id: "fig9", text, json: json!({ "protocols": series }) }
}

/// Fig. 10: overlap of addresses responsive to each protocol.
pub fn fig10(ctx: &Ctx) -> ExpOutput {
    let snap = ctx.snapshot_at(Day::PAPER_END);
    let sets: Vec<(String, Vec<Addr>)> =
        Protocol::ALL.iter().map(|p| (p.to_string(), snap.cleaned_for(*p).to_addr_vec())).collect();
    let m = OverlapMatrix::new(&sets);
    // TCP/80 ∩ ICMP share — the headline "mostly also responsive to ICMP".
    let tcp80_row = sets.iter().position(|(l, _)| l == "TCP/80").expect("tcp80");
    let icmp_col = sets.iter().position(|(l, _)| l == "ICMP").expect("icmp");
    let text = format!(
        "Fig. 10 — protocol overlap (% of row set also in column set), {}\n\
         paper shape: TCP/UDP responders are mostly ⊂ ICMP; TCP/80 ~ TCP/443 overlap strongly\n\n{}\
         TCP/80 within ICMP: {:.1} %\n",
        snap.day.to_date(),
        m.render(),
        m.at(tcp80_row, icmp_col),
    );
    let icmp_cover = m.at(tcp80_row, icmp_col);
    ExpOutput {
        id: "fig10",
        text,
        json: json!({ "labels": m.labels, "pct": m.pct, "tcp80_in_icmp": icmp_cover }),
    }
}

/// Extra (Sec. 4.1): EUI-64 analysis of the input list.
pub fn eui64(ctx: &Ctx) -> ExpOutput {
    use sixdust_addr::Eui64;
    let input = ctx.svc.input();
    let mut macs: HashMap<u64, u64> = HashMap::new();
    let mut eui_total = 0u64;
    for a in input {
        if let Some(e) = Eui64::from_addr(*a) {
            eui_total += 1;
            let mac = e.mac();
            let key = u64::from_be_bytes([0, 0, mac[0], mac[1], mac[2], mac[3], mac[4], mac[5]]);
            *macs.entry(key).or_insert(0) += 1;
        }
    }
    let distinct = macs.len() as u64;
    let top = macs.values().copied().max().unwrap_or(0);
    let singles = macs.values().filter(|n| **n == 1).count();
    let text = format!(
        "Sec. 4.1 — EUI-64 interface identifiers in the input\n\
         input addresses:        {}\n\
         with EUI-64 IID:        {} ({:.1} % — paper: 282 M of 790 M ≈ 36 %)\n\
         distinct MACs:          {} (paper: 22.7 M; addrs/MAC ≈ {:.1})\n\
         most frequent MAC in:   {} addresses (paper: 240 k, a ZTE OUI)\n\
         MACs seen once:         {}\n",
        human(input.len() as u64),
        human(eui_total),
        eui_total as f64 * 100.0 / input.len().max(1) as f64,
        human(distinct),
        eui_total as f64 / distinct.max(1) as f64,
        human(top),
        human(singles as u64),
    );
    ExpOutput {
        id: "eui64",
        text,
        json: json!({ "input": input.len(), "eui64": eui_total,
            "distinct_macs": distinct, "top_mac_addrs": top, "single_macs": singles }),
    }
}

/// Ever-responsive stability stat (Sec. 4.3: 176.6 k responsive through
/// the whole period, 5.4 % of the final set).
pub fn stability(ctx: &Ctx) -> ExpOutput {
    // Approximate "always responsive" via intersection of snapshots.
    let mut always: Option<HashSet<Addr>> = None;
    for snap_day in Day::SNAPSHOTS {
        let set: HashSet<Addr> = ctx.snapshot_at(snap_day).cleaned_total().addrs().collect();
        always = Some(match always {
            None => set,
            Some(prev) => prev.intersection(&set).copied().collect(),
        });
    }
    let always = always.unwrap_or_default();
    let last = ctx.snapshot_at(Day::PAPER_END).cleaned_total().len();
    let text = format!(
        "Sec. 4.3 — stability: {} addresses responsive in every yearly snapshot\n\
         = {:.1} % of the final responsive set ({}) — paper: 5.4 %\n",
        human(always.len() as u64),
        always.len() as f64 * 100.0 / last.max(1) as f64,
        human(last as u64),
    );
    ExpOutput { id: "stability", text, json: json!({ "always": always.len(), "final": last }) }
}
